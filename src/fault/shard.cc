#include "fault/shard.hh"

#include "common/logging.hh"
#include "trace/metrics.hh"

namespace warped {
namespace fault {

namespace {

/** Keys that are configuration echo, not accumulated state: the
 *  aggregator takes them from its own skeleton and must NOT sum them
 *  across deltas. */
bool
isEchoKey(const std::string &k)
{
    return k == "campaign.span" || k == "campaign.space.size" ||
           k.compare(0, 16, "campaign.strata.") == 0;
}

std::uint64_t
require(const std::map<std::string, std::uint64_t> &kv,
        const char *key, const char *what)
{
    const auto it = kv.find(key);
    if (it == kv.end())
        throw ShardError(std::string(what) + ": missing " + key);
    return it->second;
}

/** Upper bound on a delta/state document. Matches the wire layer's
 *  frame bound (sim/wire.hh): a real delta is KiB-to-MiB of flat
 *  counters; anything bigger is a corrupt length or a runaway file,
 *  and parsing it would just burn memory before failing the
 *  fingerprint anyway. */
constexpr std::size_t kMaxDocumentBytes = 64u * 1024 * 1024;

/** Upper bound on a single counter key. The longest legitimate keys
 *  are strata echoes ("campaign.strata.<unit>.<bucket>..."), well
 *  under a hundred bytes; a multi-KiB key means the document's
 *  quoting was damaged and a chunk of text fused into one "key". */
constexpr std::size_t kMaxKeyBytes = 4096;

void
boundDocument(const std::string &text, const char *what)
{
    if (text.size() > kMaxDocumentBytes)
        throw ShardError(
            std::string(what) + " is implausibly large (" +
            std::to_string(text.size()) + " bytes, limit " +
            std::to_string(kMaxDocumentBytes) +
            "): refusing to parse a corrupt or hostile document");
}

void
boundKeys(const std::map<std::string, std::uint64_t> &kv,
          const char *what)
{
    for (const auto &[k, v] : kv) {
        (void)v;
        if (k.size() > kMaxKeyBytes)
            throw ShardError(
                std::string(what) + " contains a " +
                std::to_string(k.size()) +
                "-byte counter key: the document's structure is "
                "damaged");
    }
}

/** Strict decimal parse for the shard index embedded in an
 *  "aggregator.have.N" key. Returns false on any non-digit — a
 *  corrupted state file must be diagnosed, not crash the
 *  orchestrator through an unhandled std::invalid_argument. */
bool
parseHaveIndex(const std::string &key, std::uint64_t &idx)
{
    const std::string digits = key.substr(16);
    if (digits.empty() || digits.size() > 20)
        return false;
    std::uint64_t v = 0;
    for (const char c : digits) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t next = v * 10 + std::uint64_t(c - '0');
        if (next < v)
            return false; // overflowed 64 bits
        v = next;
    }
    idx = v;
    return true;
}

} // namespace

std::vector<ShardPlan>
planShards(std::uint64_t total_runs, std::uint64_t shard_count)
{
    if (shard_count == 0)
        warped_panic("planShards: zero shards");
    std::vector<ShardPlan> out;
    out.reserve(static_cast<std::size_t>(shard_count));
    const std::uint64_t per = total_runs / shard_count;
    const std::uint64_t extra = total_runs % shard_count;
    std::uint64_t base = 0;
    for (std::uint64_t i = 0; i < shard_count; ++i) {
        ShardPlan p;
        p.index = i;
        p.base = base;
        p.count = per + (i < extra ? 1 : 0);
        base += p.count;
        out.push_back(p);
    }
    return out;
}

std::string
ShardDelta::toJson() const
{
    trace::MetricsRegistry state;
    state.counter("shard.version") = 1;
    state.counter("shard.index") = shard;
    state.counter("shard.base") = base;
    state.counter("shard.count") = count;
    state.counter("shard.signature") = signature;
    state.counter("shard.fingerprint") =
        trace::countersFingerprint(counters);
    for (const auto &[k, v] : counters)
        state.counter(k) = v;
    return state.toJson();
}

ShardDelta
ShardDelta::fromJson(const std::string &text)
{
    boundDocument(text, "shard delta");
    if (!trace::flatJsonComplete(text))
        throw ShardError("shard delta is truncated (no closing '}'):"
                         " the worker died mid-write");
    auto kv = trace::parseFlatCounters(text);
    boundKeys(kv, "shard delta");
    ShardDelta d;
    if (require(kv, "shard.version", "shard delta") != 1)
        throw ShardError("shard delta: unsupported version");
    d.shard = require(kv, "shard.index", "shard delta");
    d.base = require(kv, "shard.base", "shard delta");
    d.count = require(kv, "shard.count", "shard delta");
    d.signature = require(kv, "shard.signature", "shard delta");
    // The header fields are untrusted input (they arrived over a
    // file or socket): a run range that wraps 64 bits can only be a
    // damaged document, and must not reach range arithmetic.
    if (d.base + d.count < d.base)
        throw ShardError("shard delta run range [" +
                         std::to_string(d.base) + ", +" +
                         std::to_string(d.count) +
                         ") overflows: the header is corrupt");
    const auto fingerprint =
        require(kv, "shard.fingerprint", "shard delta");
    kv.erase("shard.version");
    kv.erase("shard.index");
    kv.erase("shard.base");
    kv.erase("shard.count");
    kv.erase("shard.signature");
    kv.erase("shard.fingerprint");
    if (fingerprint != trace::countersFingerprint(kv))
        throw ShardError("shard delta fails its integrity "
                         "fingerprint: the document is damaged");
    d.counters = std::move(kv);
    return d;
}

ShardDelta
runShardInProcess(const WorkloadFactory &factory,
                  const EngineConfig &cfg, const ShardPlan &plan)
{
    CampaignEngine engine(factory, cfg);
    const CampaignReport delta =
        engine.runRange(plan.base, plan.count);
    ShardDelta d;
    d.shard = plan.index;
    d.base = plan.base;
    d.count = plan.count;
    d.signature = engine.signature();
    d.counters = delta.toMetrics().counters();
    return d;
}

ShardAggregator::ShardAggregator(CampaignReport skeleton,
                                 std::uint64_t signature,
                                 std::uint64_t total_runs,
                                 std::uint64_t shard_count)
    : skel_(std::move(skeleton)), signature_(signature),
      totalRuns_(total_runs), shardCount_(shard_count),
      plan_(planShards(total_runs, shard_count)),
      have_(static_cast<std::size_t>(shard_count), false)
{
}

bool
ShardAggregator::fold(const ShardDelta &d)
{
    if (d.signature != signature_)
        throw ShardError(
            "shard delta signature does not match this campaign "
            "(mixed configurations or a stale worker?)");
    if (d.shard >= shardCount_)
        throw ShardError("shard index out of range");
    const auto &p = plan_[static_cast<std::size_t>(d.shard)];
    if (d.base != p.base || d.count != p.count)
        throw ShardError("shard range disagrees with the plan "
                         "(mismatched --shards between orchestrator "
                         "and worker?)");
    if (have_[static_cast<std::size_t>(d.shard)])
        return false;
    for (const auto &[k, v] : d.counters) {
        if (isEchoKey(k))
            continue;
        sum_[k] += v;
    }
    have_[static_cast<std::size_t>(d.shard)] = true;
    ++folded_;
    return true;
}

bool
ShardAggregator::has(std::uint64_t shard) const
{
    return shard < shardCount_ &&
           have_[static_cast<std::size_t>(shard)];
}

std::vector<std::uint64_t>
ShardAggregator::pendingShards() const
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t i = 0; i < shardCount_; ++i)
        if (!have_[static_cast<std::size_t>(i)])
            out.push_back(i);
    return out;
}

std::uint64_t
ShardAggregator::sampled() const
{
    const auto it = sum_.find("campaign.sampled");
    return it == sum_.end() ? 0 : it->second;
}

CampaignReport
ShardAggregator::report() const
{
    if (!complete())
        throw ShardError("campaign incomplete: " +
                         std::to_string(shardCount_ - folded_) +
                         " shard(s) still pending");
    CampaignReport rep = skel_;
    restoreReportCounters(sum_, rep);
    return rep;
}

std::string
ShardAggregator::stateJson() const
{
    trace::MetricsRegistry state;
    state.counter("aggregator.version") = 1;
    state.counter("aggregator.signature") = signature_;
    state.counter("aggregator.total_runs") = totalRuns_;
    state.counter("aggregator.shard_count") = shardCount_;
    for (std::uint64_t i = 0; i < shardCount_; ++i)
        if (have_[static_cast<std::size_t>(i)])
            state.counter("aggregator.have." + std::to_string(i)) = 1;
    state.counter("aggregator.fingerprint") =
        trace::countersFingerprint(sum_);
    for (const auto &[k, v] : sum_)
        state.counter(k) = v;
    return state.toJson();
}

bool
ShardAggregator::loadState(const std::string &text)
{
    boundDocument(text, "aggregator state");
    if (!trace::flatJsonComplete(text))
        throw ShardError(
            "aggregator state is truncated (no closing '}'): the "
            "previous orchestrator crashed mid-write; delete the "
            "state file to restart from zero");
    auto kv = trace::parseFlatCounters(text);
    boundKeys(kv, "aggregator state");
    const auto get = [&](const char *key) -> std::uint64_t {
        const auto it = kv.find(key);
        return it == kv.end() ? 0 : it->second;
    };
    if (get("aggregator.version") != 1 ||
        get("aggregator.signature") != signature_ ||
        get("aggregator.total_runs") != totalRuns_ ||
        get("aggregator.shard_count") != shardCount_) {
        warped_warn("serve: aggregator state does not match this "
                    "campaign; ignoring");
        return false;
    }
    const auto fingerprint = get("aggregator.fingerprint");
    std::vector<bool> have(static_cast<std::size_t>(shardCount_),
                           false);
    for (auto it = kv.begin(); it != kv.end();) {
        const std::string &k = it->first;
        if (k.compare(0, 11, "aggregator.") == 0) {
            if (k.compare(0, 16, "aggregator.have.") == 0) {
                std::uint64_t idx = 0;
                if (!parseHaveIndex(k, idx))
                    throw ShardError(
                        "aggregator state contains a malformed "
                        "shard marker '" +
                        k +
                        "': the file is damaged; delete it to "
                        "restart from zero");
                if (idx < shardCount_ && it->second)
                    have[static_cast<std::size_t>(idx)] = true;
            }
            it = kv.erase(it);
        } else {
            ++it;
        }
    }
    if (fingerprint != trace::countersFingerprint(kv))
        throw ShardError(
            "aggregator state fails its integrity fingerprint: the "
            "file is damaged; delete it to restart from zero");
    sum_ = std::move(kv);
    have_ = std::move(have);
    folded_ = 0;
    for (const auto b : have_)
        folded_ += b ? 1 : 0;
    return true;
}

} // namespace fault
} // namespace warped
