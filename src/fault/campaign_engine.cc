#include "fault/campaign_engine.hh"

#include <bit>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpu/gpu.hh"
#include "sim/run_pool.hh"
#include "stats/accumulator.hh"

namespace warped {
namespace fault {

namespace {

/** Stable lower-case slug for metric keys ("transient", "stuck0",
 *  "stuck1" — matching the CLI spellings). */
const char *
kindSlug(FaultKind k)
{
    switch (k) {
      case FaultKind::TransientBitFlip:
        return "transient";
      case FaultKind::StuckAtZero:
        return "stuck0";
      case FaultKind::StuckAtOne:
        return "stuck1";
    }
    return "?";
}

/** Stable lower-case label for a unit-restriction axis entry. */
std::string
unitLabel(const std::optional<isa::UnitType> &u)
{
    if (!u)
        return "any";
    std::string s = isa::unitTypeName(*u);
    for (auto &c : s)
        c = static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    return s;
}

/** What one injected run contributed, before the ordered fold. */
struct RunRecord
{
    OutcomeClass cls = OutcomeClass::Masked;
    bool activated = false;
    FaultKind kind = FaultKind::TransientBitFlip;
    std::optional<isa::UnitType> unit;
    /** Memory-site run: folds into byMemKind instead of
     *  byKind/byUnit. */
    bool isMemory = false;
    mem::MemFaultKind memKind = mem::MemFaultKind::Bit;
    std::uint64_t latency = 0;
    bool hasLatency = false;
    /** Rollback-replay accounting (all zero with recovery off). */
    std::uint64_t recoveryCycles = 0;
    bool hasRecovery = false;
    std::uint64_t rollbacks = 0;
    std::uint64_t giveUps = 0;
    /** The run tripped a simulator panic twice (hang-DUE). */
    bool aborted = false;
    std::uint64_t runIndex = 0;
    std::uint64_t siteIndex = 0;
    /** Stratum label under stratified sampling; empty when the
     *  campaign samples uniformly. */
    std::string stratumLabel;
};

void
emitCounts(trace::MetricsRegistry &m, const std::string &prefix,
           const OutcomeCounts &c)
{
    if (c.masked)
        m.counter(prefix + ".masked") = c.masked;
    if (c.notActivated)
        m.counter(prefix + ".masked.not_activated") = c.notActivated;
    if (c.detected)
        m.counter(prefix + ".detected") = c.detected;
    if (c.recovered)
        m.counter(prefix + ".recovered") = c.recovered;
    if (c.eccCorrected)
        m.counter(prefix + ".ecc_corrected") = c.eccCorrected;
    if (c.sdc)
        m.counter(prefix + ".sdc") = c.sdc;
    if (c.due)
        m.counter(prefix + ".due") = c.due;
}

void
restoreCounts(const std::map<std::string, std::uint64_t> &kv,
              const std::string &prefix, OutcomeCounts &c)
{
    const auto get = [&](const char *leaf) -> std::uint64_t {
        const auto it = kv.find(prefix + leaf);
        return it == kv.end() ? 0 : it->second;
    };
    c.masked = get(".masked");
    c.notActivated = get(".masked.not_activated");
    c.detected = get(".detected");
    c.recovered = get(".recovered");
    c.eccCorrected = get(".ecc_corrected");
    c.sdc = get(".sdc");
    c.due = get(".due");
}

} // namespace

const char *
outcomeClassName(OutcomeClass c)
{
    switch (c) {
      case OutcomeClass::Masked:
        return "masked";
      case OutcomeClass::Detected:
        return "detected";
      case OutcomeClass::Recovered:
        return "recovered";
      case OutcomeClass::EccCorrected:
        return "ecc_corrected";
      case OutcomeClass::Sdc:
        return "sdc";
      case OutcomeClass::Due:
        return "due";
    }
    return "?";
}

OutcomeClass
classifyOutcome(bool activated, bool detected, bool hung,
                bool output_ok, bool recovered_clean)
{
    if (!activated)
        return OutcomeClass::Masked;
    if (detected)
        // Recovered is a refinement of Detected; SDC stays reachable
        // only from the !detected branch below, so recovery can never
        // turn a would-be-Detected run into a silent corruption.
        return recovered_clean && !hung && output_ok
                   ? OutcomeClass::Recovered
                   : OutcomeClass::Detected;
    if (hung)
        return OutcomeClass::Due;
    if (!output_ok)
        return OutcomeClass::Sdc;
    return OutcomeClass::Masked;
}

OutcomeClass
classifyOutcome(bool activated, bool detected, bool hung,
                bool output_ok)
{
    return classifyOutcome(activated, detected, hung, output_ok,
                           /*recovered_clean=*/false);
}

OutcomeClass
classifyMemOutcome(bool activated, bool ecc_uncorrectable,
                   bool ecc_corrected, bool detected, bool hung,
                   bool output_ok)
{
    if (!activated)
        return OutcomeClass::Masked;
    if (ecc_uncorrectable || hung)
        // The codec's uncorrectable flag is a machine-check class
        // event: the run counts as a DUE even if the corrupt value
        // happened not to reach the output.
        return OutcomeClass::Due;
    if (detected)
        return OutcomeClass::Detected;
    if (!output_ok)
        return OutcomeClass::Sdc;
    if (ecc_corrected)
        return OutcomeClass::EccCorrected;
    return OutcomeClass::Masked;
}

void
OutcomeCounts::add(OutcomeClass c, bool activated)
{
    switch (c) {
      case OutcomeClass::Masked:
        ++masked;
        if (!activated)
            ++notActivated;
        break;
      case OutcomeClass::Detected:
        ++detected;
        break;
      case OutcomeClass::Recovered:
        ++recovered;
        break;
      case OutcomeClass::EccCorrected:
        ++eccCorrected;
        break;
      case OutcomeClass::Sdc:
        ++sdc;
        break;
      case OutcomeClass::Due:
        ++due;
        break;
    }
}

double
OutcomeCounts::coverage() const
{
    const auto t = total();
    return t == 0
               ? 0.0
               : double(detected + recovered + eccCorrected) /
                     double(t);
}

stats::Interval
OutcomeCounts::coverageCi(double z) const
{
    return stats::wilsonInterval(detected + recovered + eccCorrected,
                                 total(), z);
}

double
OutcomeCounts::detectionRate() const
{
    const auto caught = detected + recovered + eccCorrected;
    const auto consequential = caught + sdc + due;
    return consequential == 0
               ? 1.0
               : double(caught) / double(consequential);
}

stats::Interval
OutcomeCounts::detectionCi(double z) const
{
    const auto caught = detected + recovered + eccCorrected;
    return stats::wilsonInterval(caught, caught + sdc + due, z);
}

unsigned
latencyBucket(std::uint64_t cycles)
{
    const unsigned b = std::bit_width(cycles);
    return b < kLatencyBuckets ? b : kLatencyBuckets - 1;
}

double
CampaignReport::meanDetectionLatency() const
{
    return latencyCount ? double(latencySum) / double(latencyCount)
                        : 0.0;
}

double
CampaignReport::meanRecoveryCycles() const
{
    return recoveryCount ? double(recoverySum) / double(recoveryCount)
                         : 0.0;
}

trace::MetricsRegistry
CampaignReport::toMetrics() const
{
    trace::MetricsRegistry m;
    m.counter("campaign.sampled") = sampled;
    m.counter("campaign.space.size") = spaceSize;
    m.counter("campaign.span") = span;
    emitCounts(m, "campaign.outcome", overall);
    for (const auto &[kind, c] : byKind)
        emitCounts(m, std::string("campaign.kind.") + kindSlug(kind),
                   c);
    for (const auto &[label, c] : byUnit)
        emitCounts(m, "campaign.unit." + label, c);
    for (const auto &[kind, c] : byMemKind)
        emitCounts(m, std::string("campaign.memkind.") +
                          mem::memFaultKindSlug(kind),
                   c);
    // Stratified-sampling surface, gated on strataWindows so uniform
    // campaigns render byte-identically to pre-strata ones. The
    // campaign.strata.* keys are configuration echo (bucket count and
    // stratum populations — NOT additive across shard deltas); the
    // campaign.stratum.<label>.* keys are per-stratum outcome tallies
    // and sum like every other counter.
    if (strataWindows) {
        m.counter("campaign.strata.windows") = strataWindows;
        for (const auto &[label, n] : stratumSizes)
            m.counter("campaign.strata.size." + label) = n;
        for (const auto &[label, c] : byStratum)
            emitCounts(m, "campaign.stratum." + label, c);
    }
    for (unsigned b = 0; b < kLatencyBuckets; ++b) {
        if (const auto n = latencyHist.count(b)) {
            char key[48];
            std::snprintf(key, sizeof key,
                          "campaign.latency.hist.b%02u", b);
            m.counter(key) = n;
        }
    }
    if (latencySum)
        m.counter("campaign.latency.sum") = latencySum;
    if (latencyCount)
        m.counter("campaign.latency.count") = latencyCount;
    if (kernelLengthSum)
        m.counter("campaign.latency.kernel_sum") = kernelLengthSum;

    // Every recovery key is zero-gated (counters) or gated on
    // recoveryEnabled (gauges), so a recovery-off report renders
    // byte-identically to one from a build without recovery.
    for (unsigned b = 0; b < kLatencyBuckets; ++b) {
        if (const auto n = recoveryHist.count(b)) {
            char key[48];
            std::snprintf(key, sizeof key,
                          "campaign.recovery.hist.b%02u", b);
            m.counter(key) = n;
        }
    }
    if (recoverySum)
        m.counter("campaign.recovery.sum") = recoverySum;
    if (recoveryCount)
        m.counter("campaign.recovery.count") = recoveryCount;
    if (rollbacks)
        m.counter("campaign.recovery.rollbacks") = rollbacks;
    if (giveUps)
        m.counter("campaign.recovery.giveups") = giveUps;
    if (abortedRuns)
        m.counter("campaign.aborted_runs") = abortedRuns;

    // Scheme identity, gated the same way: the default backend
    // (Warped-DMR, full protection) emits nothing, so pre-seam
    // reports and post-seam default reports are byte-identical.
    if (scheme.id != protection::SchemeId::WarpedDmr ||
        scheme.protectFraction != 1.0) {
        m.counter("campaign.scheme.id") =
            static_cast<std::uint64_t>(scheme.id);
        m.gauge("campaign.scheme.protect_fraction") =
            scheme.protectFraction;
    }

    const auto cov = overall.coverageCi();
    m.gauge("campaign.coverage") = overall.coverage();
    m.gauge("campaign.coverage.wilson_lo") = cov.lo;
    m.gauge("campaign.coverage.wilson_hi") = cov.hi;
    const auto det = overall.detectionCi();
    m.gauge("campaign.detection_rate") = overall.detectionRate();
    m.gauge("campaign.detection_rate.wilson_lo") = det.lo;
    m.gauge("campaign.detection_rate.wilson_hi") = det.hi;
    const auto t = overall.total();
    m.gauge("campaign.masked_rate") =
        t ? double(overall.masked) / double(t) : 0.0;
    m.gauge("campaign.sdc_rate") =
        t ? double(overall.sdc) / double(t) : 0.0;
    m.gauge("campaign.due_rate") =
        t ? double(overall.due) / double(t) : 0.0;
    m.gauge("campaign.latency.mean") = meanDetectionLatency();
    if (recoveryEnabled) {
        // Recovered fraction of the alarmed (detected ∪ recovered)
        // runs: the paper-style "how many detections become full
        // repairs" number, with its Wilson interval.
        const auto alarmed = overall.detected + overall.recovered;
        const auto rc =
            stats::wilsonInterval(overall.recovered, alarmed);
        m.gauge("campaign.recovered_fraction") =
            alarmed ? double(overall.recovered) / double(alarmed)
                    : 0.0;
        m.gauge("campaign.recovered_fraction.wilson_lo") = rc.lo;
        m.gauge("campaign.recovered_fraction.wilson_hi") = rc.hi;
        m.gauge("campaign.recovery.mean") = meanRecoveryCycles();
    }
    for (const auto &[kind, c] : byKind)
        m.gauge(std::string("campaign.kind.") + kindSlug(kind) +
                ".coverage") = c.coverage();

    // The stratified coverage estimator (Cochran): per-stratum
    // proportions combined with population weights, plus per-stratum
    // Wilson intervals. Same gate as the stratum counters above.
    if (strataWindows && !stratumSizes.empty()) {
        std::vector<std::uint64_t> sizes;
        sizes.reserve(stratumSizes.size());
        for (const auto &[label, n] : stratumSizes)
            sizes.push_back(n);
        stats::StratifiedEstimator est(std::move(sizes));
        std::size_t h = 0;
        for (const auto &[label, n] : stratumSizes) {
            const auto it = byStratum.find(label);
            if (it != byStratum.end())
                est.addCounts(h, caught(it->second),
                              it->second.total());
            ++h;
        }
        const auto ci = est.interval();
        m.gauge("campaign.coverage.stratified") = est.estimate();
        m.gauge("campaign.coverage.stratified_lo") = ci.lo;
        m.gauge("campaign.coverage.stratified_hi") = ci.hi;
        for (const auto &[label, c] : byStratum) {
            const auto w = c.coverageCi();
            const std::string p = "campaign.stratum." + label;
            m.gauge(p + ".coverage") = c.coverage();
            m.gauge(p + ".coverage.wilson_lo") = w.lo;
            m.gauge(p + ".coverage.wilson_hi") = w.hi;
        }
    }

    // The memory-side protection surface, gated on memEnabled so
    // execution-only reports render byte-identically to pre-memory
    // builds: how much the ECC absorbed, and — the question the
    // campaign exists to answer — how much *escaped* both ECC and
    // DMR (memory-data faults are invisible to redundant execution,
    // so without ECC the escaped fraction is the SDC+DUE mass).
    if (memEnabled) {
        const auto t = overall.total();
        const auto escaped = overall.sdc + overall.due;
        const auto esc = stats::wilsonInterval(escaped, t);
        m.gauge("campaign.escaped_rate") =
            t ? double(escaped) / double(t) : 0.0;
        m.gauge("campaign.escaped_rate.wilson_lo") = esc.lo;
        m.gauge("campaign.escaped_rate.wilson_hi") = esc.hi;
        const auto ecc =
            stats::wilsonInterval(overall.eccCorrected, t);
        m.gauge("campaign.ecc.corrected_rate") =
            t ? double(overall.eccCorrected) / double(t) : 0.0;
        m.gauge("campaign.ecc.corrected_rate.wilson_lo") = ecc.lo;
        m.gauge("campaign.ecc.corrected_rate.wilson_hi") = ecc.hi;
        for (const auto &[kind, c] : byMemKind) {
            const std::string p = std::string("campaign.memkind.") +
                                  mem::memFaultKindSlug(kind);
            const auto kt = c.total();
            const auto kesc = stats::wilsonInterval(c.sdc + c.due, kt);
            m.gauge(p + ".escaped_rate") =
                kt ? double(c.sdc + c.due) / double(kt) : 0.0;
            m.gauge(p + ".escaped_rate.wilson_lo") = kesc.lo;
            m.gauge(p + ".escaped_rate.wilson_hi") = kesc.hi;
            const auto kecc = stats::wilsonInterval(c.eccCorrected, kt);
            m.gauge(p + ".corrected_rate") =
                kt ? double(c.eccCorrected) / double(kt) : 0.0;
            m.gauge(p + ".corrected_rate.wilson_lo") = kecc.lo;
            m.gauge(p + ".corrected_rate.wilson_hi") = kecc.hi;
        }
    }
    return m;
}

std::string
CampaignReport::toJson() const
{
    return toMetrics().toJson();
}

CampaignEngine::CampaignEngine(WorkloadFactory factory,
                               EngineConfig cfg)
    : factory_(std::move(factory)), cfg_(std::move(cfg))
{
}

namespace {

/** One injected experiment (thread-safe: everything is run-local).
 *  With @p strat set the site is drawn within the run's stratum;
 *  either way the draw is a pure function of (seed, run_index). */
RunRecord
runOne(std::uint64_t run_index, const FaultSiteSpace &space,
       const StratifiedSpace *strat, Cycle span,
       const WorkloadFactory &factory, const EngineConfig &cfg)
{
    const auto siteIdx =
        strat ? strat->siteForRun(cfg.seed, run_index)
              : space.sampleIndex(cfg.seed, run_index);
    const FaultSpec spec = space.site(siteIdx);

    RunRecord rec;
    rec.kind = spec.kind;
    rec.unit = spec.unit;
    rec.runIndex = run_index;
    rec.siteIndex = siteIdx;
    if (strat)
        rec.stratumLabel =
            strat->stratum(strat->stratumOfRun(run_index)).label;

    if (spec.isMemory) {
        // Memory-cell upset: no execution-side hook; the fault lives
        // in the global memory's fault plane and every read of the
        // upset word is filtered through the configured ECC codec.
        // Same twice-then-hang-DUE retry contract as below.
        rec.isMemory = true;
        rec.memKind = spec.memKind;
        for (unsigned attempt = 0; attempt < 2; ++attempt) {
            auto w = factory();
            try {
                gpu::Gpu g(cfg.gpu, cfg.dmr, /*seed=*/1, nullptr,
                           cfg.recovery, cfg.scheme);
                w->setup(g);
                mem::MemFaultPlane plane(cfg.gpu.eccKind);
                plane.inject(spec.memAddr, spec.memKind, spec.bit,
                             spec.cycleBegin);
                g.mem().attachFaultPlane(&plane);
                const Cycle watchdog = span * 20 + 100000;
                const auto r = g.launch(w->program(), w->gridBlocks(),
                                        w->blockThreads(), watchdog);
                // Host readback goes through the plane too, so an
                // upset that survives in an output word is caught by
                // verify() whether or not the kernel ever loaded it.
                bool outputOk = true;
                if (!r.hung)
                    outputOk = w->verify(g);
                g.mem().attachFaultPlane(nullptr);
                rec.activated = plane.consumedReads() > 0;
                rec.cls = classifyMemOutcome(
                    rec.activated, plane.uncorrectable() > 0,
                    plane.corrected() > 0, r.dmr.errorsDetected > 0,
                    r.hung, outputOk);
                return rec;
            } catch (const std::exception &e) {
                if (attempt == 0)
                    continue;
                warped_warn("campaign: memory run ", run_index,
                            " (site ", siteIdx, ", seed ", cfg.seed,
                            ") aborted twice: ", e.what(),
                            "; classifying as hang-DUE");
                rec.activated = true;
                rec.cls = OutcomeClass::Due;
                rec.aborted = true;
            }
        }
        return rec;
    }

    // An injected fault (or, with recovery on, a rollback livelock)
    // can drive the simulator into one of its own sanity panics —
    // warped_panic throws. That must cost the campaign one run, not
    // the whole campaign: retry the same site once with identical
    // seeding (everything below is a pure function of run_index), and
    // if it throws again classify the site as a hang-DUE.
    for (unsigned attempt = 0; attempt < 2; ++attempt) {
        FaultInjector injector;
        injector.add(spec);
        auto w = factory();
        try {
            gpu::Gpu g(cfg.gpu, cfg.dmr, /*seed=*/1, &injector,
                       cfg.recovery, cfg.scheme);
            w->setup(g);
            // Watchdog: a fault can corrupt a loop counter and hang
            // the kernel; give it a generous multiple of the
            // fault-free span.
            const Cycle watchdog = span * 20 + 100000;
            const auto r = g.launch(w->program(), w->gridBlocks(),
                                    w->blockThreads(), watchdog);

            rec.activated = injector.activations() > 0;
            const bool detected = r.dmr.errorsDetected > 0;
            const bool recoveredClean = cfg.recovery.enabled &&
                                        detected &&
                                        r.recovery.giveUps == 0;
            // The golden-reference comparison: Workload::verify
            // checks the output buffers against the CPU reference,
            // which the fault-free golden run was itself validated
            // against (runVerified below). A detected run's output
            // only matters when rollback-replay claims a clean
            // repair, so verify() is also called for those.
            bool outputOk = true;
            if (rec.activated && !r.hung &&
                (!detected || recoveredClean))
                outputOk = w->verify(g);
            rec.cls = classifyOutcome(rec.activated, detected,
                                      r.hung, outputOk,
                                      recoveredClean);
            if ((rec.cls == OutcomeClass::Detected ||
                 rec.cls == OutcomeClass::Recovered) &&
                !r.dmr.errorLog.empty()) {
                const Cycle det = r.dmr.errorLog.front().cycle;
                const Cycle act = injector.firstActivationCycle();
                rec.latency = det >= act ? det - act : 0;
                rec.hasLatency = true;
            }
            rec.rollbacks = r.recovery.rollbacks;
            rec.giveUps = r.recovery.giveUps;
            if (rec.cls == OutcomeClass::Recovered) {
                rec.recoveryCycles = r.recovery.recoveryCycles;
                rec.hasRecovery = true;
            }
            return rec;
        } catch (const std::exception &e) {
            if (attempt == 0)
                continue;
            warped_warn("campaign: run ", run_index, " (site ",
                        siteIdx, ", seed ", cfg.seed,
                        ") aborted twice: ", e.what(),
                        "; classifying as hang-DUE");
            rec.activated = true;
            rec.cls = OutcomeClass::Due;
            rec.hasLatency = false;
            rec.aborted = true;
        }
    }
    return rec;
}

void
fold(CampaignReport &rep, const RunRecord &rec)
{
    rep.overall.add(rec.cls, rec.activated);
    if (rec.isMemory) {
        rep.byMemKind[rec.memKind].add(rec.cls, rec.activated);
    } else {
        rep.byKind[rec.kind].add(rec.cls, rec.activated);
        rep.byUnit[unitLabel(rec.unit)].add(rec.cls, rec.activated);
    }
    if (!rec.stratumLabel.empty())
        rep.byStratum[rec.stratumLabel].add(rec.cls, rec.activated);
    if (rec.hasLatency) {
        rep.latencyHist.add(latencyBucket(rec.latency));
        rep.latencySum += rec.latency;
        ++rep.latencyCount;
        rep.kernelLengthSum += rep.span;
    }
    if (rec.hasRecovery) {
        rep.recoveryHist.add(latencyBucket(rec.recoveryCycles));
        rep.recoverySum += rec.recoveryCycles;
        ++rep.recoveryCount;
    }
    rep.rollbacks += rec.rollbacks;
    rep.giveUps += rec.giveUps;
    if (rec.aborted) {
        ++rep.abortedRuns;
        if (rep.abortLog.size() < CampaignReport::kMaxAbortLog)
            rep.abortLog.push_back({rec.runIndex, rec.siteIndex});
    }
    ++rep.sampled;
}

/** Configuration fingerprint a checkpoint must match to be resumed:
 *  workload label, seed, planned sites, the site space (which folds
 *  in the golden span), and the protection/machine knobs. */
std::uint64_t
configSignature(const EngineConfig &cfg, const FaultSiteSpace &space,
                std::uint64_t planned)
{
    std::uint64_t h = splitmix64(0xca3f5a17u);
    const auto mix = [&h](std::uint64_t v) {
        h = splitmix64(h ^ v);
    };
    for (const char c : cfg.workload)
        mix(static_cast<unsigned char>(c));
    mix(cfg.seed);
    mix(planned);
    mix(space.signature());
    mix(cfg.gpu.numSms);
    mix(cfg.gpu.warpSize);
    mix(cfg.dmr.enabled);
    mix(cfg.dmr.intraWarp);
    mix(cfg.dmr.interWarp);
    mix(cfg.dmr.laneShuffle);
    mix(cfg.dmr.replayQSize);
    mix(static_cast<std::uint64_t>(cfg.dmr.mapping));
    mix(cfg.dmr.samplingEpoch);
    mix(cfg.dmr.samplingActive);
    mix(cfg.dmr.arbitrateErrors);
    // Mixed only when enabled, so pre-recovery checkpoints keep
    // resuming under the default (off) configuration.
    if (cfg.recovery.enabled) {
        mix(0x5ec0);
        mix(cfg.recovery.retryBudget);
        mix(cfg.recovery.ringCapacity);
        mix(cfg.recovery.rollbackPenalty);
    }
    // Likewise mixed only for non-default backends, so pre-seam
    // checkpoints keep resuming under the default (Warped-DMR).
    if (cfg.scheme.id != protection::SchemeId::WarpedDmr ||
        cfg.scheme.protectFraction != 1.0) {
        mix(0x5c3e);
        mix(static_cast<std::uint64_t>(cfg.scheme.id));
        mix(static_cast<std::uint64_t>(cfg.scheme.protectFraction *
                                       1e9));
    }
    // Memory model / ECC / fault-domain knobs, mixed only when any
    // is non-default so pre-memory checkpoints keep resuming. (The
    // site space's own memory axes are already in space.signature();
    // this covers the machine knobs that change run *outcomes*.)
    if (cfg.gpu.memModel != arch::MemModel::Flat ||
        cfg.gpu.eccKind != arch::EccKind::None ||
        cfg.space.memEnabled || !cfg.space.execEnabled) {
        mix(0x3ecc);
        mix(static_cast<std::uint64_t>(cfg.gpu.memModel));
        mix(static_cast<std::uint64_t>(cfg.gpu.eccKind));
        mix(cfg.gpu.memBanks);
        mix(cfg.gpu.memRowBytes);
        mix(cfg.gpu.memRowMissPenalty);
        mix(cfg.space.execEnabled ? 1 : 0);
        mix(cfg.space.memEnabled ? 1 : 0);
    }
    // Stratified sampling changes which site run i draws, so a
    // stratified checkpoint must never resume a uniform campaign (or
    // vice versa). Mixed only when on, preserving every pre-strata
    // signature.
    if (cfg.strataWindows) {
        mix(0x57a7);
        mix(cfg.strataWindows);
    }
    return h;
}

void
writeCheckpoint(const std::string &path, const CampaignReport &rep,
                std::uint64_t signature)
{
    // Counters only (integers round-trip exactly; every gauge is
    // derivable from them), plus the header the loader validates.
    // Version 2 adds a payload fingerprint so a torn or damaged file
    // is *detected* on resume instead of silently restoring a prefix
    // of itself.
    auto m = rep.toMetrics();
    trace::MetricsRegistry state;
    state.counter("campaign.checkpoint.version") = 2;
    state.counter("campaign.checkpoint.signature") = signature;
    state.counter("campaign.checkpoint.fingerprint") =
        trace::countersFingerprint(m.counters());
    for (const auto &[k, v] : m.counters())
        state.counter(k) = v;
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp);
        if (!f) {
            warped_warn("campaign: cannot write checkpoint ", tmp);
            return;
        }
        f << state.toJson();
    }
    // Crash-atomic swap: rename(2) replaces the destination in one
    // step, so every observable state of `path` is either the old
    // complete checkpoint or the new complete one. (An earlier
    // version removed the destination first — a crash in that window
    // left no checkpoint at all.)
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        warped_warn("campaign: cannot move checkpoint into ", path);
}

/** Load @p path into @p rep; false (and an untouched report) when
 *  the file is absent or is a stale checkpoint (version or signature
 *  mismatch — warned and ignored). Throws CheckpointError when the
 *  file exists but is torn or fails its integrity fingerprint. */
bool
loadCheckpoint(const std::string &path, std::uint64_t signature,
               CampaignReport &rep)
{
    std::ifstream f(path);
    if (!f)
        return false;
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string text = ss.str();
    if (!trace::flatJsonComplete(text))
        throw CheckpointError(
            "checkpoint " + path +
            " is truncated (no closing '}'): the previous writer "
            "crashed mid-write; delete the file to restart from zero");
    auto kv = trace::parseFlatCounters(text);

    const auto get = [&](const char *key) -> std::uint64_t {
        const auto it = kv.find(key);
        return it == kv.end() ? 0 : it->second;
    };
    if (get("campaign.checkpoint.version") != 2 ||
        get("campaign.checkpoint.signature") != signature) {
        warped_warn("campaign: checkpoint ", path,
                    " does not match this configuration; ignoring");
        return false;
    }
    const auto fingerprint = get("campaign.checkpoint.fingerprint");
    kv.erase("campaign.checkpoint.version");
    kv.erase("campaign.checkpoint.signature");
    kv.erase("campaign.checkpoint.fingerprint");
    if (fingerprint != trace::countersFingerprint(kv))
        throw CheckpointError(
            "checkpoint " + path +
            " fails its integrity fingerprint: the file is damaged; "
            "delete it to restart from zero");

    restoreReportCounters(kv, rep);
    return true;
}

} // namespace

void
restoreReportCounters(const std::map<std::string, std::uint64_t> &kv,
                      CampaignReport &rep)
{
    const auto get = [&](const std::string &key) -> std::uint64_t {
        const auto it = kv.find(key);
        return it == kv.end() ? 0 : it->second;
    };
    const auto getInto = [&](const std::string &key,
                             std::uint64_t &out) {
        const auto it = kv.find(key);
        if (it != kv.end())
            out = it->second;
    };
    getInto("campaign.sampled", rep.sampled);
    getInto("campaign.space.size", rep.spaceSize);
    getInto("campaign.span", rep.span);
    restoreCounts(kv, "campaign.outcome", rep.overall);

    // Breakdown labels are discovered from the key set itself, so
    // this restorer needs no engine configuration (the shard
    // aggregator runs it over summed delta counters).
    static constexpr std::pair<const char *, FaultKind> kKinds[] = {
        {"transient", FaultKind::TransientBitFlip},
        {"stuck0", FaultKind::StuckAtZero},
        {"stuck1", FaultKind::StuckAtOne},
    };
    for (const auto &[slug, kind] : kKinds) {
        OutcomeCounts c;
        restoreCounts(kv, std::string("campaign.kind.") + slug, c);
        if (c.total())
            rep.byKind[kind] = c;
    }
    static constexpr std::pair<const char *, mem::MemFaultKind>
        kMemKinds[] = {
            {"membit", mem::MemFaultKind::Bit},
            {"memdouble", mem::MemFaultKind::DoubleBit},
            {"memchip", mem::MemFaultKind::ChipBurst},
        };
    for (const auto &[slug, kind] : kMemKinds) {
        OutcomeCounts c;
        restoreCounts(kv, std::string("campaign.memkind.") + slug, c);
        if (c.total())
            rep.byMemKind[kind] = c;
    }
    // Unit labels carry no '.', so the label is the segment right
    // after the prefix.
    {
        const std::string prefix = "campaign.unit.";
        for (auto it = kv.lower_bound(prefix);
             it != kv.end() &&
             it->first.compare(0, prefix.size(), prefix) == 0;
             ++it) {
            const auto dot = it->first.find('.', prefix.size());
            if (dot == std::string::npos)
                continue;
            const std::string label =
                it->first.substr(prefix.size(), dot - prefix.size());
            if (rep.byUnit.count(label))
                continue;
            OutcomeCounts c;
            restoreCounts(kv, prefix + label, c);
            if (c.total())
                rep.byUnit[label] = c;
        }
    }
    // Stratum labels DO contain dots ("any.w03", "sp.perm"), so they
    // are recovered from the campaign.strata.size.<label> echo keys
    // (label = the whole remainder) — and, because the shard
    // aggregator deliberately drops echo keys from its counter sum,
    // also from the labels the caller's skeleton already carries.
    {
        const std::string prefix = "campaign.strata.size.";
        for (auto it = kv.lower_bound(prefix);
             it != kv.end() &&
             it->first.compare(0, prefix.size(), prefix) == 0;
             ++it)
            rep.stratumSizes[it->first.substr(prefix.size())] =
                it->second;
        for (const auto &[label, n] : rep.stratumSizes) {
            OutcomeCounts c;
            restoreCounts(kv, "campaign.stratum." + label, c);
            if (c.total())
                rep.byStratum[label] = c;
        }
    }
    if (const auto w = get("campaign.strata.windows"))
        rep.strataWindows = static_cast<unsigned>(w);

    for (unsigned b = 0; b < kLatencyBuckets; ++b) {
        char key[48];
        std::snprintf(key, sizeof key, "campaign.latency.hist.b%02u",
                      b);
        if (const auto n = get(key))
            rep.latencyHist.add(b, n);
    }
    rep.latencySum = get("campaign.latency.sum");
    rep.latencyCount = get("campaign.latency.count");
    rep.kernelLengthSum = get("campaign.latency.kernel_sum");
    for (unsigned b = 0; b < kLatencyBuckets; ++b) {
        char key[48];
        std::snprintf(key, sizeof key, "campaign.recovery.hist.b%02u",
                      b);
        if (const auto n = get(key))
            rep.recoveryHist.add(b, n);
    }
    rep.recoverySum = get("campaign.recovery.sum");
    rep.recoveryCount = get("campaign.recovery.count");
    rep.rollbacks = get("campaign.recovery.rollbacks");
    rep.giveUps = get("campaign.recovery.giveups");
    rep.abortedRuns = get("campaign.aborted_runs");
}

void
CampaignEngine::prepare()
{
    if (prepared_)
        return;

    // 1. Golden reference run: validates the fault-free machine
    //    against the CPU reference and yields the cycle span that
    //    anchors transient placement, the watchdog budget, and the
    //    software-scheme latency baseline. Deliberately run with
    //    recovery OFF even when the campaign enables it: the site
    //    space is derived from this span, so recovery-on and
    //    recovery-off campaigns sample the *same* sites and their
    //    Detected/Recovered splits are directly comparable.
    Cycle span;
    std::uint64_t footprint_words = 0;
    {
        auto w = factory_();
        gpu::Gpu g(cfg_.gpu, cfg_.dmr, /*seed=*/1, nullptr, {},
                   cfg_.scheme);
        span = workloads::runVerified(*w, g).cycles;
        // Device footprint the memory-cell axes cover: every word
        // the workload's allocator handed out (inputs, outputs and
        // scratch — dead words are legitimate Masked sites).
        footprint_words = g.allocator().used() / 4;
    }

    // 2. Resolve the site space and the sample size.
    SiteSpaceConfig sc = cfg_.space;
    sc.numSms = cfg_.gpu.numSms;
    sc.warpSize = cfg_.gpu.warpSize;
    if (sc.memEnabled) {
        if (sc.memWords == 0)
            sc.memWords = footprint_words;
        // Annotate memory sites with the machine's DRAM geometry.
        sc.memBanks = std::max(1u, cfg_.gpu.memBanks);
        sc.memRowWords = std::max(1u, cfg_.gpu.memRowBytes / 4);
    }
    span_ = span;
    space_.emplace(sc, span);
    planned_ = cfg_.sites
                   ? cfg_.sites
                   : stats::sampleSizeForMargin(cfg_.marginOfError,
                                                stats::kZ95, 0.5,
                                                space_->size());
    if (cfg_.strataWindows) {
        strat_.emplace(*space_, cfg_.strataWindows);
        strat_->allocate(planned_);
    }
    signature_ = configSignature(cfg_, *space_, planned_);
    prepared_ = true;
}

CampaignReport
CampaignEngine::skeleton()
{
    prepare();
    CampaignReport rep;
    rep.spaceSize = space_->size();
    rep.span = span_;
    rep.recoveryEnabled = cfg_.recovery.enabled;
    rep.scheme = cfg_.scheme;
    rep.memEnabled = space_->config().memEnabled;
    if (strat_) {
        rep.strataWindows = strat_->windowBuckets();
        for (std::size_t h = 0; h < strat_->strata(); ++h)
            rep.stratumSizes[strat_->stratum(h).label] =
                strat_->stratum(h).size;
    }
    return rep;
}

CampaignReport
CampaignEngine::runRange(std::uint64_t base, std::uint64_t count)
{
    CampaignReport rep = skeleton();
    if (base + count > planned_ || base + count < base)
        warped_fatal("campaign: shard range [", base, ", ",
                     base + count, ") exceeds the ", planned_,
                     " planned runs");
    sim::RunPool pool(cfg_.jobs);
    std::vector<RunRecord> records(static_cast<std::size_t>(count));
    pool.parallelFor(static_cast<std::size_t>(count),
                     [&](std::size_t i) {
                         records[i] = runOne(
                             base + i, *space_,
                             strat_ ? &*strat_ : nullptr, span_,
                             factory_, cfg_);
                     });
    for (const auto &rec : records)
        fold(rep, rec);
    return rep;
}

CampaignReport
CampaignEngine::run()
{
    CampaignReport rep = skeleton();

    // 3. Resume from a matching checkpoint when one exists. A torn
    //    or damaged checkpoint throws CheckpointError — see
    //    loadCheckpoint.
    if (!cfg_.checkpointPath.empty())
        loadCheckpoint(cfg_.checkpointPath, signature_, rep);
    if (rep.sampled > planned_)
        warped_fatal("campaign: checkpoint has ", rep.sampled,
                     " runs but only ", planned_, " are planned");

    // 4. Chunked fan-out: each chunk runs on the pool, folds in
    //    submission-index order (so the accumulated state is
    //    worker-count-independent), then checkpoints. Nonsensical
    //    chunk sizes are clamped (zero would never checkpoint inside
    //    the loop; larger-than-campaign would only checkpoint at the
    //    very end — both defeat the point of checkpointing).
    sim::RunPool pool(cfg_.jobs);
    std::uint64_t chunkSize = cfg_.checkpointEvery;
    if (chunkSize == 0) {
        warped_warn("campaign: checkpointEvery 0 would never "
                    "checkpoint; clamping to 1000");
        chunkSize = 1000;
    }
    if (planned_ && chunkSize > planned_) {
        warped_warn("campaign: checkpointEvery ", chunkSize,
                    " exceeds the ", planned_,
                    " planned runs; clamping");
        chunkSize = planned_;
    }
    std::vector<RunRecord> records;
    std::uint64_t chunks = 0;
    while (rep.sampled < planned_) {
        const auto base = rep.sampled;
        const auto n = std::min(chunkSize, planned_ - base);
        records.assign(static_cast<std::size_t>(n), RunRecord{});
        pool.parallelFor(static_cast<std::size_t>(n),
                         [&](std::size_t i) {
                             records[i] = runOne(
                                 base + i, *space_,
                                 strat_ ? &*strat_ : nullptr, span_,
                                 factory_, cfg_);
                         });
        for (const auto &rec : records)
            fold(rep, rec);
        if (!cfg_.checkpointPath.empty())
            writeCheckpoint(cfg_.checkpointPath, rep, signature_);
        if (cfg_.stopAfterChunks && ++chunks >= cfg_.stopAfterChunks)
            break;
    }
    return rep;
}

} // namespace fault
} // namespace warped
