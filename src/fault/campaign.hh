/**
 * @file
 * Fault-injection campaign: measures Warped-DMR's *observed*
 * detection rate, the experimental counterpart to the analytic
 * coverage number of Fig 9a. Each run injects one random fault,
 * executes a workload, and classifies the outcome.
 */

#ifndef WARPED_FAULT_CAMPAIGN_HH
#define WARPED_FAULT_CAMPAIGN_HH

#include <functional>
#include <string>

#include "arch/gpu_config.hh"
#include "dmr/dmr_config.hh"
#include "fault/fault_injector.hh"
#include "workloads/workload.hh"

namespace warped {
namespace fault {

enum class Outcome
{
    Detected,      ///< the DMR comparator fired
    Hang,          ///< the fault destroyed control flow (watchdog DUE)
    Sdc,           ///< silent data corruption: wrong output, no alarm
    Benign,        ///< fault activated but the output is still correct
    NotActivated,  ///< the faulty lane/cycle never produced a value
};

struct CampaignResult
{
    unsigned runs = 0;
    unsigned detected = 0;
    unsigned hangs = 0;  ///< watchdog-detectable, not silent
    unsigned sdc = 0;
    unsigned benign = 0;
    unsigned notActivated = 0;

    /** Sum over detected runs of (first comparator mismatch cycle -
     *  first fault activation cycle); with `detected` gives the mean
     *  detection latency — the "detect early" advantage over
     *  kernel-granularity software schemes (paper Sec 1). */
    std::uint64_t detectionLatencySum = 0;
    /** Sum of fault-free kernel lengths of the detected runs: the
     *  latency protection::ReplayCompareScheme pays, since its
     *  comparator only fires at the end-of-kernel replay (run with
     *  `--scheme replay-compare` to measure it directly). */
    std::uint64_t kernelLengthSum = 0;

    double
    meanDetectionLatency() const
    {
        return detected ? double(detectionLatencySum) / detected : 0.0;
    }

    /** Comparator-detection rate among activated, terminating runs. */
    double
    detectionRate() const
    {
        const unsigned activated = detected + sdc + benign;
        return activated ? double(detected) / double(activated) : 1.0;
    }

    /** SDC rate among activated faults. */
    double
    sdcRate() const
    {
        const unsigned activated = detected + sdc + benign + hangs;
        return activated ? double(sdc) / double(activated) : 0.0;
    }
};

struct CampaignConfig
{
    unsigned runs = 50;
    FaultKind kind = FaultKind::TransientBitFlip;
    /** Restrict faults to one execution-unit type (e.g. SFU-only for
     *  pure-dataflow faults that never touch control flow). */
    std::optional<isa::UnitType> unit;
    std::uint64_t seed = 42;
    /** Transient faults are placed uniformly inside the fault-free
     *  run's cycle span scaled by this fraction pair. */
    double windowLo = 0.05, windowHi = 0.85;
    /** Worker threads for the run fan-out; 0 = hardware concurrency,
     *  1 = sequential. Run i draws its fault from a private Rng
     *  seeded by deriveSeed(seed, i) and results fold in submission
     *  order, so CampaignResult is bit-identical for every value. */
    unsigned jobs = 0;
};

/**
 * Run the campaign for one workload.
 *
 * @param factory creates a fresh workload instance per run
 * @param gpu_cfg machine description
 * @param dmr_cfg protection configuration under test
 * @param cfg     campaign parameters
 */
CampaignResult
runCampaign(const std::function<std::unique_ptr<workloads::Workload>()>
                &factory,
            const arch::GpuConfig &gpu_cfg,
            const dmr::DmrConfig &dmr_cfg, const CampaignConfig &cfg);

} // namespace fault
} // namespace warped

#endif // WARPED_FAULT_CAMPAIGN_HH
