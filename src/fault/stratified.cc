#include "fault/stratified.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/opcode.hh"
#include "stats/accumulator.hh"

namespace warped {
namespace fault {

namespace {

bool
isTransient(FaultKind k)
{
    return k == FaultKind::TransientBitFlip;
}

std::string
unitSlug(const std::optional<isa::UnitType> &u)
{
    if (!u)
        return "any";
    std::string s = isa::unitTypeName(*u);
    for (auto &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
bucketLabel(const std::string &prefix, unsigned t)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, ".w%02u", t);
    return prefix + buf;
}

} // namespace

StratifiedSpace::StratifiedSpace(const FaultSiteSpace &space,
                                 unsigned window_buckets)
{
    const SiteSpaceConfig &cfg = space.config();
    const unsigned windows = space.cycleWindows();
    buckets_ = std::max(1u, std::min(window_buckets, windows));

    // Kind-block bases replicate FaultSiteSpace::site()'s layout: the
    // execution block is ordered by cfg.kinds, transient kinds occupy
    // place*windows sites, stuck-at kinds place sites, where place =
    // sms * lanes * bits * units. Within a kind block the unit axis
    // is outermost, so a (kind, unit) chunk is contiguous.
    const std::uint64_t place = std::uint64_t{cfg.numSms} *
                                cfg.warpSize * cfg.bits *
                                cfg.units.size();
    const std::uint64_t perUnit =
        std::uint64_t{cfg.numSms} * cfg.warpSize * cfg.bits;

    std::vector<std::uint64_t> kindBase(cfg.kinds.size(), 0);
    {
        std::uint64_t base = 0;
        for (std::size_t i = 0;
             cfg.execEnabled && i < cfg.kinds.size(); ++i) {
            kindBase[i] = base;
            base += isTransient(cfg.kinds[i]) ? place * windows
                                              : place;
        }
    }

    const auto bucketRange = [&](unsigned t) {
        const std::uint64_t w0 = std::uint64_t{windows} * t / buckets_;
        const std::uint64_t w1 =
            std::uint64_t{windows} * (t + 1) / buckets_;
        return std::pair<std::uint64_t, std::uint64_t>(w0, w1);
    };

    bool anyStuck = false, anyTransient = false;
    for (const auto k : cfg.kinds)
        (isTransient(k) ? anyTransient : anyStuck) = true;

    if (cfg.execEnabled) {
        for (std::size_t u = 0; u < cfg.units.size(); ++u) {
            const std::string uslug = unitSlug(cfg.units[u]);
            if (anyTransient) {
                for (unsigned t = 0; t < buckets_; ++t) {
                    Stratum s;
                    s.label = bucketLabel(uslug, t);
                    const auto [w0, w1] = bucketRange(t);
                    for (std::size_t i = 0; i < cfg.kinds.size();
                         ++i) {
                        if (!isTransient(cfg.kinds[i]))
                            continue;
                        Block b;
                        b.base = kindBase[i] +
                                 u * perUnit * windows + w0;
                        b.stride = windows;
                        b.innerCount = w1 - w0;
                        b.outerCount = w1 > w0 ? perUnit : 0;
                        if (b.size())
                            s.blocks.push_back(b);
                    }
                    for (const auto &b : s.blocks)
                        s.size += b.size();
                    strata_.push_back(std::move(s));
                }
            }
            if (anyStuck) {
                Stratum s;
                s.label = uslug + ".perm";
                for (std::size_t i = 0; i < cfg.kinds.size(); ++i) {
                    if (isTransient(cfg.kinds[i]))
                        continue;
                    Block b;
                    b.base = kindBase[i] + u * perUnit;
                    b.stride = 1;
                    b.innerCount = 1;
                    b.outerCount = perUnit;
                    s.blocks.push_back(b);
                }
                for (const auto &b : s.blocks)
                    s.size += b.size();
                strata_.push_back(std::move(s));
            }
        }
    }

    if (space.memSites()) {
        // Memory block layout (site_space.cc): index = execSites +
        // ((kind*words + word)*bits + bit)*windows + w — the window
        // axis is innermost, so a window bucket is one lattice.
        const std::uint64_t rows = space.memSites() / windows;
        for (unsigned t = 0; t < buckets_; ++t) {
            const auto [w0, w1] = bucketRange(t);
            Stratum s;
            s.label = bucketLabel("mem", t);
            Block b;
            b.base = space.execSites() + w0;
            b.stride = windows;
            b.innerCount = w1 - w0;
            b.outerCount = w1 > w0 ? rows : 0;
            if (b.size())
                s.blocks.push_back(b);
            s.size = b.size();
            strata_.push_back(std::move(s));
        }
    }

    std::uint64_t total = 0;
    for (const auto &s : strata_)
        total += s.size;
    if (total != space.size())
        warped_panic("StratifiedSpace: strata cover ", total,
                     " sites of ", space.size());
}

const StratifiedSpace::Stratum &
StratifiedSpace::stratum(std::size_t h) const
{
    if (h >= strata_.size())
        warped_panic("StratifiedSpace: stratum ", h, " out of ",
                     strata_.size());
    return strata_[h];
}

std::vector<std::string>
StratifiedSpace::labels() const
{
    std::vector<std::string> out;
    out.reserve(strata_.size());
    for (const auto &s : strata_)
        out.push_back(s.label);
    return out;
}

std::vector<std::uint64_t>
StratifiedSpace::sizes() const
{
    std::vector<std::uint64_t> out;
    out.reserve(strata_.size());
    for (const auto &s : strata_)
        out.push_back(s.size);
    return out;
}

void
StratifiedSpace::allocate(std::uint64_t total_runs)
{
    const auto alloc =
        stats::proportionalAllocation(sizes(), total_runs);
    allocPrefix_.assign(strata_.size() + 1, 0);
    for (std::size_t h = 0; h < strata_.size(); ++h)
        allocPrefix_[h + 1] = allocPrefix_[h] + alloc[h];
    if (allocPrefix_.back() != total_runs)
        warped_panic("StratifiedSpace: allocated ",
                     allocPrefix_.back(), " of ", total_runs,
                     " runs");
}

std::uint64_t
StratifiedSpace::allocated(std::size_t h) const
{
    if (allocPrefix_.empty() || h + 1 >= allocPrefix_.size())
        warped_panic("StratifiedSpace: allocated(", h,
                     ") before allocate()");
    return allocPrefix_[h + 1] - allocPrefix_[h];
}

std::size_t
StratifiedSpace::stratumOfRun(std::uint64_t run_index) const
{
    if (allocPrefix_.empty() || run_index >= allocPrefix_.back())
        warped_panic("StratifiedSpace: run ", run_index,
                     " outside the allocated campaign");
    const auto it = std::upper_bound(allocPrefix_.begin(),
                                     allocPrefix_.end(), run_index);
    return static_cast<std::size_t>(it - allocPrefix_.begin()) - 1;
}

std::uint64_t
StratifiedSpace::siteForRun(std::uint64_t seed,
                            std::uint64_t run_index) const
{
    const auto h = stratumOfRun(run_index);
    const Stratum &s = strata_[h];
    if (s.size == 0)
        warped_panic("StratifiedSpace: run ", run_index,
                     " allocated to empty stratum ", s.label);
    Rng rng(deriveSeed(seed, run_index));
    std::uint64_t r = rng.nextBelow(s.size);
    for (const auto &b : s.blocks) {
        if (r < b.size())
            return b.at(r);
        r -= b.size();
    }
    warped_panic("StratifiedSpace: draw escaped stratum ", s.label);
}

} // namespace fault
} // namespace warped
