#include "fault/site_space.hh"

#include <algorithm>

#include "common/logging.hh"

namespace warped {
namespace fault {

namespace {

bool
isTransient(FaultKind k)
{
    return k == FaultKind::TransientBitFlip;
}

} // namespace

FaultSiteSpace::FaultSiteSpace(const SiteSpaceConfig &cfg, Cycle span)
    : cfg_(cfg), span_(span)
{
    if (cfg_.kinds.empty() || cfg_.units.empty() || cfg_.numSms == 0 ||
        cfg_.warpSize == 0 || cfg_.bits == 0)
        warped_panic("FaultSiteSpace: empty axis");
    if (!(cfg_.windowLo >= 0.0 && cfg_.windowHi <= 1.0 &&
          cfg_.windowLo <= cfg_.windowHi))
        warped_panic("FaultSiteSpace: bad window fractions [",
                     cfg_.windowLo, ", ", cfg_.windowHi, "]");

    pulseLo_ = static_cast<Cycle>(cfg_.windowLo * span);
    const auto hi = static_cast<Cycle>(cfg_.windowHi * span);
    pulseSpan_ = hi > pulseLo_ ? hi - pulseLo_ : 1;

    if (cfg_.cycleWindows != 0)
        windows_ = cfg_.cycleWindows;
    else
        windows_ = static_cast<unsigned>(
            std::min<Cycle>(pulseSpan_, 4096));
    if (windows_ == 0)
        windows_ = 1;

    if (!cfg_.execEnabled && !cfg_.memEnabled)
        warped_panic("FaultSiteSpace: no fault domain enabled");
    if (cfg_.memEnabled &&
        (cfg_.memKinds.empty() || cfg_.memWords == 0 ||
         cfg_.memBits == 0 || cfg_.memBits > 32))
        warped_panic("FaultSiteSpace: bad memory axes (",
                     cfg_.memKinds.size(), " kinds, ", cfg_.memWords,
                     " words, ", cfg_.memBits, " bits)");

    const std::uint64_t place = std::uint64_t{cfg_.numSms} *
                                cfg_.warpSize * cfg_.bits *
                                cfg_.units.size();
    sitesPerKind_[0] = place * windows_; // transient: one per pulse
    sitesPerKind_[1] = place;            // stuck-at: whole-run window
    execSites_ = 0;
    if (cfg_.execEnabled)
        for (const auto k : cfg_.kinds)
            execSites_ += sitesPerKind_[isTransient(k) ? 0 : 1];
    // Memory-cell block: (kind, word, bit, strike window), appended
    // after the execution block so exec-only layouts are unchanged.
    memSites_ = 0;
    if (cfg_.memEnabled)
        memSites_ = std::uint64_t{cfg_.memKinds.size()} *
                    cfg_.memWords * cfg_.memBits * windows_;
    size_ = execSites_ + memSites_;
}

FaultSpec
FaultSiteSpace::site(std::uint64_t index) const
{
    if (index >= size_)
        warped_panic("FaultSiteSpace: index ", index,
                     " out of space [0,", size_, ")");

    if (index >= execSites_) {
        // Memory block: ((kind * words + word) * bits + bit) *
        // windows + w. Upsets are transient strikes (a cell flips at
        // one cycle and stays corrupted until scrubbed/overwritten),
        // so every memory site carries a pulse window.
        FaultSpec spec;
        spec.isMemory = true;
        std::uint64_t rest = index - execSites_;
        const std::uint64_t w = rest % windows_;
        rest /= windows_;
        spec.bit = static_cast<unsigned>(rest % cfg_.memBits);
        rest /= cfg_.memBits;
        const std::uint64_t word = rest % cfg_.memWords;
        rest /= cfg_.memWords;
        spec.memKind = cfg_.memKinds[static_cast<std::size_t>(rest)];
        spec.memAddr = word * 4;
        spec.memCol = static_cast<unsigned>(word % cfg_.memRowWords);
        const std::uint64_t t = word / cfg_.memRowWords;
        spec.memBank = static_cast<unsigned>(t % cfg_.memBanks);
        spec.memRow = t / cfg_.memBanks;
        const Cycle c =
            pulseLo_ + (2 * w + 1) * pulseSpan_ / (2 * windows_);
        spec.cycleBegin = c;
        spec.cycleEnd = c;
        return spec;
    }

    // Locate the kind block, then decode the mixed-radix remainder:
    // (((unit * sms + sm) * lanes + lane) * bits + bit) * windows + w.
    FaultSpec spec;
    std::uint64_t rest = index;
    std::uint64_t windows = 1;
    for (const auto k : cfg_.kinds) {
        const auto block = sitesPerKind_[isTransient(k) ? 0 : 1];
        if (rest < block) {
            spec.kind = k;
            windows = isTransient(k) ? windows_ : 1;
            break;
        }
        rest -= block;
    }

    const std::uint64_t w = rest % windows;
    rest /= windows;
    spec.bit = static_cast<unsigned>(rest % cfg_.bits);
    rest /= cfg_.bits;
    spec.lane = static_cast<unsigned>(rest % cfg_.warpSize);
    rest /= cfg_.warpSize;
    spec.sm = static_cast<unsigned>(rest % cfg_.numSms);
    rest /= cfg_.numSms;
    spec.unit = cfg_.units[static_cast<std::size_t>(rest)];

    if (isTransient(spec.kind)) {
        // Window w's representative pulse cycle: the midpoint of the
        // w-th equal slice of the eligible range.
        const Cycle c =
            pulseLo_ + (2 * w + 1) * pulseSpan_ / (2 * windows_);
        spec.cycleBegin = c;
        spec.cycleEnd = c;
    }
    return spec;
}

std::uint64_t
FaultSiteSpace::sampleIndex(std::uint64_t seed,
                            std::uint64_t run_index) const
{
    Rng rng(deriveSeed(seed, run_index));
    return rng.nextBelow(size_);
}

std::uint64_t
FaultSiteSpace::signature() const
{
    std::uint64_t h = splitmix64(0x5157a9d1u);
    const auto mix = [&h](std::uint64_t v) {
        h = splitmix64(h ^ v);
    };
    mix(cfg_.numSms);
    mix(cfg_.warpSize);
    mix(cfg_.bits);
    mix(windows_);
    mix(span_);
    mix(static_cast<std::uint64_t>(cfg_.windowLo * 1e9));
    mix(static_cast<std::uint64_t>(cfg_.windowHi * 1e9));
    for (const auto k : cfg_.kinds)
        mix(static_cast<std::uint64_t>(k) + 1);
    for (const auto &u : cfg_.units)
        mix(u ? static_cast<std::uint64_t>(*u) + 2 : 1);
    // Memory axes only perturb the fingerprint when enabled, so
    // exec-only spaces (every pre-memory checkpoint) hash unchanged.
    if (cfg_.memEnabled) {
        mix(0x3e3);
        mix(cfg_.memWords);
        mix(cfg_.memBits);
        mix(cfg_.memBanks);
        mix(cfg_.memRowWords);
        for (const auto k : cfg_.memKinds)
            mix(static_cast<std::uint64_t>(k) + 1);
    }
    if (!cfg_.execEnabled)
        mix(0xe0ff);
    return h;
}

} // namespace fault
} // namespace warped
