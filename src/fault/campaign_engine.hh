/**
 * @file
 * fault::CampaignEngine — statistical fault-injection campaigns with
 * outcome classification.
 *
 * The engine turns the paper's headline coverage claim into a
 * measured, interval-bounded statement: it draws fault sites from a
 * FaultSiteSpace (seeded, i.i.d.), runs one injected experiment per
 * site against the workload's golden (fault-free) reference, and
 * classifies every experiment into the standard fault-injection
 * taxonomy:
 *
 *  - **Masked**:   no DMR alarm and the output matches the golden
 *                  reference (the fault never activated, or its
 *                  effect died out architecturally);
 *  - **Detected**: the Warped-DMR comparator fired;
 *  - **Recovered**: the comparator fired *and* the rollback-replay
 *                  engine repaired the run — no give-ups, no hang,
 *                  and the final output matches the golden
 *                  reference. Only possible when
 *                  EngineConfig::recovery is enabled; Recovered runs
 *                  are a refinement of Detected, never of SDC, so
 *                  enabling recovery can only move runs out of the
 *                  Detected bucket.
 *  - **EccCorrected**: memory sites only — the configured ECC codec
 *                  transparently repaired every read of the upset
 *                  word, no alarm needed and the output is golden.
 *                  The memory-side analogue of Recovered;
 *  - **SDC**:      silent data corruption — wrong output, no alarm;
 *  - **DUE**:      detectable uncorrectable event — the fault broke
 *                  control flow and the watchdog ended the run, or
 *                  the run tripped a simulator sanity panic twice
 *                  (see the hang-DUE retry in the engine).
 *
 * The resulting CampaignReport carries per-kind and per-unit outcome
 * breakdowns, Wilson-score confidence intervals, detection-latency
 * histograms, and a flat JSON rendering through trace::MetricsRegistry
 * (sorted keys, fixed precision — byte-identical across `--jobs`
 * values and safe to diff).
 *
 * Long campaigns checkpoint periodically to a JSON state file and
 * resume from it: runs are folded in submission-index order in
 * fixed-size chunks, so the accumulated state after run k is
 * independent of the worker count, and a resumed campaign's final
 * report is byte-identical to an uninterrupted one.
 */

#ifndef WARPED_FAULT_CAMPAIGN_ENGINE_HH
#define WARPED_FAULT_CAMPAIGN_ENGINE_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/gpu_config.hh"
#include "dmr/dmr_config.hh"
#include "fault/site_space.hh"
#include "fault/stratified.hh"
#include "protection/scheme_registry.hh"
#include "recovery/recovery_config.hh"
#include "stats/confidence.hh"
#include "stats/histogram.hh"
#include "trace/metrics.hh"
#include "workloads/workload.hh"

namespace warped {
namespace fault {

/**
 * A campaign state file (checkpoint or shard delta) that exists but
 * is structurally torn or fails its integrity fingerprint. Distinct
 * from a *stale* checkpoint (configuration-signature mismatch), which
 * is warned about and ignored: a torn file means the previous writer
 * crashed mid-write or the file was damaged, and silently restarting
 * from zero would destroy the very progress checkpointing exists to
 * protect — so it is an error the caller must see.
 */
struct CheckpointError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** The campaign outcome taxonomy (see file comment). */
enum class OutcomeClass
{
    Masked,
    Detected,
    Recovered,
    EccCorrected,
    Sdc,
    Due,
};

/** Lower-case stable label ("masked", "detected", "recovered",
 *  "ecc_corrected", "sdc", "due"). */
const char *outcomeClassName(OutcomeClass c);

/**
 * Classify one finished injected run.
 *
 * @param activated whether the fault ever changed a produced value
 * @param detected  whether the DMR comparator fired
 * @param hung      whether the run hit its watchdog budget
 * @param output_ok whether the output matches the golden reference
 * @param recovered_clean whether rollback-replay ran with zero
 *        give-ups (always false when recovery is disabled)
 *
 * A detected run is Recovered only when the recovery engine never
 * gave up, the run finished (no hang), and the output is golden —
 * anything less stays Detected. SDC remains reachable only from
 * undetected runs, so turning recovery on can never mint a new SDC.
 */
OutcomeClass classifyOutcome(bool activated, bool detected, bool hung,
                             bool output_ok, bool recovered_clean);

/** Recovery-oblivious overload (recovered_clean = false). */
OutcomeClass classifyOutcome(bool activated, bool detected, bool hung,
                             bool output_ok);

/**
 * Classify one finished *memory-site* run (the ECC-side taxonomy).
 *
 * @param activated        the upset word was read at least once
 * @param ecc_uncorrectable the codec flagged a detected-but-
 *        uncorrectable read — a memory DUE, regardless of output
 * @param ecc_corrected    the codec transparently repaired a read
 * @param detected         the execution-side DMR comparator fired
 *        (essentially unreachable for memory data faults: redundant
 *        executions consume the same corrupted value — the escape
 *        this taxonomy exists to measure)
 * @param hung             the run hit its watchdog budget
 * @param output_ok        output matches the golden reference
 *
 * Precedence: never-read upsets are Masked; an uncorrectable flag or
 * a hang is DUE; a DMR alarm is Detected; a wrong output is SDC;
 * a corrected-and-clean run is EccCorrected; anything else (e.g. the
 * upset was overwritten before any read went wrong) is Masked.
 */
OutcomeClass classifyMemOutcome(bool activated, bool ecc_uncorrectable,
                                bool ecc_corrected, bool detected,
                                bool hung, bool output_ok);

/** Outcome tally for one slice of the campaign (a kind, a unit, or
 *  the whole campaign). */
struct OutcomeCounts
{
    std::uint64_t masked = 0;
    std::uint64_t detected = 0;
    /** Detected runs rollback-replay fully repaired (disjoint from
     *  `detected`; zero whenever recovery is disabled). */
    std::uint64_t recovered = 0;
    /** Memory-site runs the ECC codec transparently repaired (zero
     *  for execution-only campaigns). */
    std::uint64_t eccCorrected = 0;
    std::uint64_t sdc = 0;
    std::uint64_t due = 0;
    /** Masked runs whose fault never even activated (subset of
     *  `masked`). */
    std::uint64_t notActivated = 0;

    std::uint64_t total() const
    {
        return masked + detected + recovered + eccCorrected + sdc +
               due;
    }

    void add(OutcomeClass c, bool activated);

    /** Fraction of sampled sites whose injection raised the DMR
     *  alarm — the campaign counterpart of the paper's Fig 9a
     *  coverage (masked sites count against it; see
     *  docs/FAULT_MODEL.md for why). Recovered runs were detected
     *  runs first, so they count toward coverage; EccCorrected runs
     *  count too — the ECC controller both detected and repaired
     *  them (the combined DMR+ECC protection surface). */
    double coverage() const;

    /** Wilson interval around coverage(). */
    stats::Interval coverageCi(double z = stats::kZ95) const;

    /** Detected fraction of the *consequential* (non-masked) runs. */
    double detectionRate() const;

    /** Wilson interval around detectionRate(). */
    stats::Interval detectionCi(double z = stats::kZ95) const;
};

/** Detection-latency histogram geometry: bucket b holds latencies
 *  with bit-width b, i.e. [2^(b-1), 2^b) cycles (bucket 0 = zero
 *  cycles). */
inline constexpr unsigned kLatencyBuckets = 48;

/** Bucket index for one latency value. */
unsigned latencyBucket(std::uint64_t cycles);

/** Aggregated campaign results (see file comment). */
struct CampaignReport
{
    /** Enumerable site-space size the sample was drawn from. */
    std::uint64_t spaceSize = 0;
    /** Sites sampled and classified so far. */
    std::uint64_t sampled = 0;
    /** Fault-free reference run length in cycles. */
    std::uint64_t span = 0;

    OutcomeCounts overall;
    std::map<FaultKind, OutcomeCounts> byKind;
    /** Keyed by unit restriction label ("any", "SP", "SFU", "LDST"). */
    std::map<std::string, OutcomeCounts> byUnit;
    /** Memory-site runs broken down by upset shape (empty for
     *  execution-only campaigns; memory runs fold here and into
     *  `overall`, not into byKind/byUnit). */
    std::map<mem::MemFaultKind, OutcomeCounts> byMemKind;

    /** Whether the site space included the memory-cell block — gates
     *  the ECC/escape gauges in toMetrics so exec-only reports stay
     *  byte-identical to pre-memory ones. */
    bool memEnabled = false;

    /** Window buckets of the stratified sampler (0 = uniform
     *  sampling). Gates every stratum key in toMetrics, so
     *  non-stratified reports stay byte-identical to pre-strata
     *  ones. */
    unsigned strataWindows = 0;
    /** Per-stratum outcome tallies, keyed by StratifiedSpace labels
     *  ("any.w03", "sp.perm", "mem.w01", ...). */
    std::map<std::string, OutcomeCounts> byStratum;
    /** Stratum population sizes N_h — the weights of the stratified
     *  estimator; filled for every stratum, sampled or not. */
    std::map<std::string, std::uint64_t> stratumSizes;

    /** Cycles from firstActivationCycle() to the first DMR detection
     *  event, log2-bucketed (see latencyBucket). */
    stats::Histogram latencyHist{kLatencyBuckets};
    std::uint64_t latencySum = 0;
    /** Number of detected runs with a recorded latency. */
    std::uint64_t latencyCount = 0;
    /** Sum of golden-run lengths over those runs: the detection
     *  latency protection::ReplayCompareScheme pays — its comparator
     *  fires only at the end-of-kernel replay (run a campaign with
     *  `--scheme replay-compare` to see the measured histogram land
     *  in the top buckets). */
    std::uint64_t kernelLengthSum = 0;

    /** Whether EngineConfig::recovery was enabled — gates the
     *  recovery gauges in toMetrics so recovery-off reports stay
     *  byte-identical to pre-recovery ones. */
    bool recoveryEnabled = false;

    /** The protection backend the campaign ran against. Non-default
     *  schemes are recorded in toMetrics; the default (Warped-DMR)
     *  emits nothing extra, keeping reports byte-identical to
     *  pre-seam ones. */
    protection::SchemeConfig scheme;

    /** Cycles rollback-replay spent repairing each Recovered run
     *  (LaunchResult recovery.recoveryCycles), log2-bucketed like
     *  the detection-latency histogram. */
    stats::Histogram recoveryHist{kLatencyBuckets};
    std::uint64_t recoverySum = 0;
    std::uint64_t recoveryCount = 0;
    /** Rollbacks / give-ups summed over every injected run. */
    std::uint64_t rollbacks = 0;
    std::uint64_t giveUps = 0;

    /** Runs that tripped a simulator sanity panic twice and were
     *  force-classified as hang-DUE (see the engine's retry). */
    std::uint64_t abortedRuns = 0;
    /** First few aborted sites, for post-mortem reproduction (not
     *  checkpointed — diagnostics only). */
    struct AbortRecord
    {
        std::uint64_t runIndex;
        std::uint64_t siteIndex;
    };
    static constexpr std::size_t kMaxAbortLog = 64;
    std::vector<AbortRecord> abortLog;

    double meanDetectionLatency() const;

    /** Mean repair cost over Recovered runs, in cycles. */
    double meanRecoveryCycles() const;

    /** Caught (detected + recovered + ecc-corrected) runs — the
     *  "success" of every proportion this report estimates. */
    static std::uint64_t caught(const OutcomeCounts &c)
    {
        return c.detected + c.recovered + c.eccCorrected;
    }

    /**
     * Flat metrics rendering: campaign.* counters and gauges in a
     * trace::MetricsRegistry (sorted keys, fixed precision).
     */
    trace::MetricsRegistry toMetrics() const;

    /** toMetrics() rendered as the registry's JSON document. */
    std::string toJson() const;
};

/**
 * Rebuild every counter-derived field of @p rep from a flat counter
 * map (the inverse of toMetrics' counter emission). Keys absent from
 * @p kv leave the corresponding field untouched, so callers seed
 * @p rep with a configuration skeleton first. The breakdown labels
 * (kinds, units, memory kinds, strata) are discovered by scanning the
 * key set — no configuration needed. Shared by the checkpoint loader
 * and the shard aggregator; gauges are never restored (they are
 * derived, and toMetrics recomputes them exactly).
 */
void
restoreReportCounters(const std::map<std::string, std::uint64_t> &kv,
                      CampaignReport &rep);

/** Workload factory: a fresh instance per run (runs execute
 *  concurrently). */
using WorkloadFactory =
    std::function<std::unique_ptr<workloads::Workload>()>;

/** Campaign parameters. */
struct EngineConfig
{
    /** Workload label recorded in checkpoints; a resumed campaign
     *  refuses a checkpoint written for a different label. */
    std::string workload;

    arch::GpuConfig gpu = arch::GpuConfig::testDefault();
    dmr::DmrConfig dmr = dmr::DmrConfig::paperDefault();
    /** Rollback-replay knobs; the default keeps recovery off, so the
     *  report (and any checkpoint signature) is byte-identical to a
     *  pre-recovery campaign. Only schemes with per-instruction
     *  detection support it (schemeSupportsRecovery) — Recovered is
     *  unreachable otherwise. */
    recovery::RecoveryConfig recovery;
    /** Protection backend under test; the default (Warped-DMR)
     *  leaves reports and checkpoint signatures byte-identical to
     *  pre-seam campaigns. */
    protection::SchemeConfig scheme;
    SiteSpaceConfig space;

    std::uint64_t seed = 42;

    /** Sites to sample; 0 = derive from marginOfError via
     *  stats::sampleSizeForMargin against the space size. */
    std::uint64_t sites = 0;
    /** Target 95 % margin of error when sites == 0. */
    double marginOfError = 0.01;

    /** Stratified sampling: transient window buckets per unit (see
     *  fault::StratifiedSpace). 0 = uniform i.i.d. sampling — the
     *  pre-strata behaviour, byte-identical reports and checkpoint
     *  signatures. */
    unsigned strataWindows = 0;

    /** Worker threads (sim::RunPool semantics: 0 = hardware
     *  concurrency, 1 = sequential). The report is byte-identical
     *  for every value. */
    unsigned jobs = 1;

    /** Checkpoint state file; empty = no checkpointing. */
    std::string checkpointPath;
    /** Runs per fold-and-checkpoint chunk. */
    std::uint64_t checkpointEvery = 1000;
    /** Test hook: stop (with a checkpoint written) after this many
     *  chunks; 0 = run to completion. */
    std::uint64_t stopAfterChunks = 0;
};

class CampaignEngine
{
  public:
    /**
     * @param factory builds a fresh workload instance per run
     * @param cfg     campaign parameters
     */
    CampaignEngine(WorkloadFactory factory, EngineConfig cfg);

    /**
     * Run the campaign (resuming from cfg.checkpointPath if the file
     * exists and matches) and return the final report. Also usable
     * for a partial run via EngineConfig::stopAfterChunks.
     *
     * @throws CheckpointError when cfg.checkpointPath exists but is
     *         torn or fails its integrity fingerprint (a *stale*
     *         checkpoint — config mismatch — is warned and ignored
     *         instead).
     */
    CampaignReport run();

    /**
     * Resolve the campaign plan without running any injections: the
     * golden reference run, the site space, the planned sample size,
     * the stratified sampler (when cfg.strataWindows > 0) and the
     * configuration signature. Idempotent; run() and runRange() call
     * it implicitly. Workers and the shard orchestrator call it
     * directly — each process derives the identical plan from the
     * identical configuration, and the signature proves it.
     */
    void prepare();

    /**
     * Classify campaign runs [base, base + count) and fold them — in
     * run-index order — into a fresh delta report (a skeleton() plus
     * exactly those runs). The site drawn for run i is a pure
     * function of (seed, i), so a shard's delta is independent of
     * which process runs it, and summing delta counters over any
     * disjoint cover of [0, plannedSites()) reproduces the
     * single-process report exactly.
     */
    CampaignReport runRange(std::uint64_t base, std::uint64_t count);

    /** A zero-run report carrying every configuration-derived field
     *  (space size, span, gating flags, stratum sizes). */
    CampaignReport skeleton();

    /** The sampled site count the configuration resolves to (derived
     *  from marginOfError when sites == 0); valid after prepare(). */
    std::uint64_t plannedSites() const { return planned_; }

    /** Configuration signature checkpoints and shard deltas must
     *  match; valid after prepare(). */
    std::uint64_t signature() const { return signature_; }

    /** Golden-run cycle span; valid after prepare(). */
    std::uint64_t span() const { return span_; }

    /** The resolved site space; valid after prepare(). */
    const FaultSiteSpace &space() const { return *space_; }

  private:
    WorkloadFactory factory_;
    EngineConfig cfg_;
    std::uint64_t planned_ = 0;
    std::uint64_t signature_ = 0;
    std::uint64_t span_ = 0;
    std::optional<FaultSiteSpace> space_;
    std::optional<StratifiedSpace> strat_;
    bool prepared_ = false;
};

} // namespace fault
} // namespace warped

#endif // WARPED_FAULT_CAMPAIGN_ENGINE_HH
