/**
 * @file
 * fault::FaultSiteSpace — the enumerable space of injectable faults.
 *
 * A *fault site* is one concrete place-and-time a fault could strike:
 * (kind, SM, physical lane, output bit, unit restriction,
 * cycle window). The space is the Cartesian product of those axes for
 * a given workload's fault-free cycle span, flattened into a single
 * dense index range [0, size()) so campaigns can either walk an
 * exhaustive slice or draw seeded uniform samples and attach
 * binomial confidence intervals to the results (stats/confidence.hh).
 *
 * Transient sites occupy one single-cycle pulse window each; the
 * [windowLo, windowHi] fraction of the span is divided into
 * `cycleWindows` evenly spaced pulse cycles. Stuck-at sites are
 * permanent, so each (SM, lane, bit, unit) contributes exactly one
 * site with the whole-run window.
 */

#ifndef WARPED_FAULT_SITE_SPACE_HH
#define WARPED_FAULT_SITE_SPACE_HH

#include <optional>
#include <vector>

#include "common/rng.hh"
#include "fault/fault_injector.hh"

namespace warped {
namespace fault {

/** Axis description for a FaultSiteSpace. */
struct SiteSpaceConfig
{
    /** SMs and physical lanes of the machine under test. */
    unsigned numSms = 1;
    unsigned warpSize = 32;

    /** Output bits considered (bit indices [0, bits)). */
    unsigned bits = 32;

    /** Fault kinds on the kind axis (must be non-empty). */
    std::vector<FaultKind> kinds = {FaultKind::TransientBitFlip,
                                    FaultKind::StuckAtZero,
                                    FaultKind::StuckAtOne};

    /**
     * Unit restrictions on the unit axis. The default single
     * `nullopt` entry means "any unit": the fault lives on the lane's
     * output wire regardless of which execution unit drives it —
     * the physical-lane model the rest of the repo uses.
     */
    std::vector<std::optional<isa::UnitType>> units = {std::nullopt};

    /**
     * Pulse-cycle count for transient sites; 0 = one window per
     * cycle of the placement span, capped at 4096.
     */
    unsigned cycleWindows = 0;

    /**
     * Transient pulses are placed inside the fault-free span scaled
     * by this fraction pair (the whole run by default).
     */
    double windowLo = 0.0, windowHi = 1.0;

    /**
     * Fault domains. Execution sites (the axes above) are the
     * paper's model and stay on by default; memory sites extend the
     * space with a memory-cell block — (memKind, word, bit, strike
     * window) over the workload's device footprint — appended
     * *after* the execution block so exec-only spaces keep their
     * exact pre-memory index layout (and signature).
     */
    bool execEnabled = true;
    bool memEnabled = false;

    /** Memory-upset shapes on the memory kind axis. */
    std::vector<mem::MemFaultKind> memKinds = {
        mem::MemFaultKind::Bit, mem::MemFaultKind::DoubleBit,
        mem::MemFaultKind::ChipBurst};

    /** Protected 32-bit words (0 = filled in by the campaign from
     *  the workload's allocator footprint). */
    std::uint64_t memWords = 0;

    /** Cell-bit axis width within a word. */
    unsigned memBits = 32;

    /** DRAM geometry used to annotate decoded memory sites (banks x
     *  rows of memRowWords words); purely reporting, the upset model
     *  itself is word-granular. */
    unsigned memBanks = 8;
    unsigned memRowWords = 512;
};

class FaultSiteSpace
{
  public:
    /**
     * @param cfg  axis description
     * @param span the workload's fault-free run length in cycles,
     *             used to resolve transient pulse windows
     */
    FaultSiteSpace(const SiteSpaceConfig &cfg, Cycle span);

    /** Total number of enumerable sites. */
    std::uint64_t size() const { return size_; }

    /** Sites in the execution block (indices [0, execSites())). */
    std::uint64_t execSites() const { return execSites_; }

    /** Sites in the appended memory block. */
    std::uint64_t memSites() const { return memSites_; }

    /** Resolved transient pulse-window count. */
    unsigned cycleWindows() const { return windows_; }

    const SiteSpaceConfig &config() const { return cfg_; }

    /** Decode dense index @p index into its concrete fault spec. */
    FaultSpec site(std::uint64_t index) const;

    /**
     * The site sampled for campaign run @p run_index under master
     * seed @p seed: a uniform draw from a private per-run generator
     * (deriveSeed), so draw i never depends on draws j < i, on the
     * worker count, or on execution order. Sampling is *with*
     * replacement — the draws are i.i.d., which is what the binomial
     * confidence intervals assume.
     */
    std::uint64_t sampleIndex(std::uint64_t seed,
                              std::uint64_t run_index) const;

    /**
     * Order-insensitive fingerprint of the axis description and
     * span, used to refuse resuming a checkpoint against a different
     * space.
     */
    std::uint64_t signature() const;

  private:
    SiteSpaceConfig cfg_;
    Cycle span_;
    Cycle pulseLo_ = 0;    ///< first eligible transient pulse cycle
    Cycle pulseSpan_ = 1;  ///< eligible transient pulse range length
    unsigned windows_ = 1; ///< transient pulse windows
    std::uint64_t sitesPerKind_[2] = {0, 0}; ///< [transient, stuck-at]
    std::uint64_t execSites_ = 0;
    std::uint64_t memSites_ = 0;
    std::uint64_t size_ = 0;
};

} // namespace fault
} // namespace warped

#endif // WARPED_FAULT_SITE_SPACE_HH
