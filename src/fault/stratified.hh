/**
 * @file
 * fault::StratifiedSpace — stratified sampling over a FaultSiteSpace.
 *
 * Uniform i.i.d. sampling answers a 1M-site question with a sample
 * whose Wilson interval shrinks as 1/sqrt(n) regardless of structure.
 * But campaign outcomes are strongly structured: detection behaves
 * very differently per execution unit and across the kernel's
 * lifetime (late-window transients are mostly masked, early-window
 * ones mostly detected). Stratified sampling exploits that structure:
 * partition the site space into strata, allocate the sample budget
 * proportionally to stratum size, sample uniformly *within* each
 * stratum, and combine per-stratum proportions with population
 * weights (stats::StratifiedEstimator). Proportional allocation is
 * never worse than uniform sampling in expectation, guarantees every
 * stratum is observed, and yields per-stratum Wilson intervals for
 * free.
 *
 * Strata (the ISSUE-9 "unit x window" grid):
 *  - one stratum per (unit-axis entry, transient window bucket) for
 *    the transient kinds — window bucket t of T covers pulse windows
 *    [t*W/T, (t+1)*W/T);
 *  - one "perm" stratum per unit-axis entry for the stuck-at kinds
 *    (they have no window axis);
 *  - one stratum per window bucket for the appended memory-cell
 *    block ("mem.wNN").
 *
 * Each stratum's site set is a union of at most a few *blocks* —
 * arithmetic lattices { base + outer*stride + inner : outer <
 * outerCount, inner < innerCount } — so membership, size, and the
 * r-th element are all O(1); the decoder never materializes site
 * lists and the 1M-site space costs a few hundred bytes.
 *
 * Determinism contract: the stratum layout and allocation are pure
 * functions of (SiteSpaceConfig, span, windowBuckets, totalRuns);
 * the site drawn for campaign run j is a pure function of (master
 * seed, j) exactly like FaultSiteSpace::sampleIndex — independent of
 * worker count, shard count, and execution order.
 */

#ifndef WARPED_FAULT_STRATIFIED_HH
#define WARPED_FAULT_STRATIFIED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/site_space.hh"

namespace warped {
namespace fault {

class StratifiedSpace
{
  public:
    /** An arithmetic lattice of site indices (see file comment). */
    struct Block
    {
        std::uint64_t base = 0;
        std::uint64_t stride = 1;
        std::uint64_t innerCount = 1;
        std::uint64_t outerCount = 0;

        std::uint64_t size() const { return innerCount * outerCount; }

        /** The r-th site of the lattice, r < size(). */
        std::uint64_t
        at(std::uint64_t r) const
        {
            return base + (r / innerCount) * stride + r % innerCount;
        }
    };

    struct Stratum
    {
        std::string label;
        std::vector<Block> blocks;
        std::uint64_t size = 0;
    };

    /**
     * @param space          the fully resolved site space
     * @param window_buckets transient window buckets per unit (T in
     *                       the file comment); clamped to >= 1
     */
    StratifiedSpace(const FaultSiteSpace &space,
                    unsigned window_buckets);

    std::size_t strata() const { return strata_.size(); }
    const Stratum &stratum(std::size_t h) const;
    unsigned windowBuckets() const { return buckets_; }

    /** Stable per-stratum labels, in stratum order. */
    std::vector<std::string> labels() const;

    /** Population sizes N_h, in stratum order (some may be 0 when
     *  the space has fewer windows than buckets). */
    std::vector<std::uint64_t> sizes() const;

    /**
     * Fix the run->stratum layout for a campaign of @p total_runs:
     * proportional largest-remainder allocation, runs laid out
     * stratum-by-stratum (runs [0, n_0) in stratum 0, the next n_1
     * in stratum 1, ...). Must be called before the run queries.
     */
    void allocate(std::uint64_t total_runs);

    /** Samples allocated to stratum @p h (after allocate()). */
    std::uint64_t allocated(std::size_t h) const;

    /** The stratum campaign run @p run_index belongs to. */
    std::size_t stratumOfRun(std::uint64_t run_index) const;

    /**
     * The site sampled for run @p run_index under master seed
     * @p seed: a uniform draw within the run's stratum from a private
     * per-run generator (deriveSeed) — i.i.d. within the stratum,
     * order- and shard-count-free.
     */
    std::uint64_t siteForRun(std::uint64_t seed,
                             std::uint64_t run_index) const;

  private:
    std::vector<Stratum> strata_;
    unsigned buckets_ = 1;
    std::vector<std::uint64_t> allocPrefix_; ///< size strata()+1
};

} // namespace fault
} // namespace warped

#endif // WARPED_FAULT_STRATIFIED_HH
