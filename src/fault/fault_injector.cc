#include "fault/fault_injector.hh"

namespace warped {
namespace fault {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::TransientBitFlip:
        return "transient bit flip";
      case FaultKind::StuckAtZero:
        return "stuck-at-0";
      case FaultKind::StuckAtOne:
        return "stuck-at-1";
    }
    return "?";
}

RegValue
FaultInjector::apply(RegValue pure, const func::FaultCtx &ctx)
{
    RegValue out = pure;
    for (const auto &f : faults_) {
        if (ctx.sm != f.sm || ctx.lane != f.lane)
            continue;
        if (f.unit && *f.unit != ctx.unit)
            continue;
        if (ctx.cycle < f.cycleBegin || ctx.cycle > f.cycleEnd)
            continue;
        const RegValue mask = RegValue{1} << f.bit;
        switch (f.kind) {
          case FaultKind::TransientBitFlip:
            out ^= mask;
            break;
          case FaultKind::StuckAtZero:
            out &= ~mask;
            break;
          case FaultKind::StuckAtOne:
            out |= mask;
            break;
        }
    }
    if (out != pure) {
        if (activations_ == 0)
            firstActivation_ = ctx.cycle;
        ++activations_;
    }
    return out;
}

RandomFaultHook::RandomFaultHook(double per_value_prob,
                                 std::uint64_t seed)
    : prob_(per_value_prob), seed_(seed), rng_(seed)
{
}

void
RandomFaultHook::reset()
{
    rng_ = Rng(seed_);
    activations_ = 0;
}

RegValue
RandomFaultHook::apply(RegValue pure, const func::FaultCtx &)
{
    if (prob_ <= 0.0 || !rng_.nextBool(prob_))
        return pure;
    ++activations_;
    return pure ^ (RegValue{1} << rng_.nextBelow(32));
}

} // namespace fault
} // namespace warped
