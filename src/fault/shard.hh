/**
 * @file
 * fault::ShardAggregator and friends — the sharded campaign protocol.
 *
 * A campaign of N planned runs is split into contiguous run-index
 * shards (planShards). Any process that holds the same EngineConfig
 * derives the identical plan (CampaignEngine::prepare is a pure
 * function of the configuration, and the configuration signature
 * proves the derivation matched), runs its shard's range
 * (CampaignEngine::runRange) and serializes the resulting delta
 * report as a ShardDelta — a flat counter document with a header and
 * an integrity fingerprint, the same shape as a campaign checkpoint.
 *
 * The orchestrator folds deltas into a ShardAggregator in ANY order:
 * every campaign statistic is an associative counter sum, so the
 * aggregate is a pure function of the *set* of folded shards —
 * independent of worker count, arrival order, duplicate deliveries
 * (idempotent fold) and failure schedule (a died worker's shard is
 * simply run again; the re-issued delta is bit-identical because the
 * site drawn for run i is a pure function of (seed, i)). When every
 * shard has been folded, report() reconstructs the CampaignReport
 * from the summed counters exactly as the checkpoint loader does, so
 * the final JSON is byte-identical to a single-process run.
 *
 * Keys that are configuration echo rather than accumulated state
 * (campaign.span, campaign.space.size, campaign.strata.*) are taken
 * from the orchestrator's own skeleton and skipped during summation.
 *
 * The aggregator itself checkpoints (stateJson/loadState, with the
 * same tmp+rename crash-atomic write discipline and fingerprint
 * validation), so a killed orchestrator resumes with only the
 * not-yet-folded shards outstanding.
 */

#ifndef WARPED_FAULT_SHARD_HH
#define WARPED_FAULT_SHARD_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/campaign_engine.hh"

namespace warped {
namespace fault {

/** A malformed, torn, or mismatched shard delta / aggregator state. */
struct ShardError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** One shard's contiguous run-index range. */
struct ShardPlan
{
    std::uint64_t index = 0;
    std::uint64_t base = 0;
    std::uint64_t count = 0;
};

/**
 * Split @p total_runs into @p shard_count contiguous ranges: the
 * first (total % count) shards get one extra run. Deterministic —
 * every process that calls this with the same arguments sees the
 * same ranges. Shards beyond total_runs come back with count 0 (they
 * still exist, so the aggregator's completion test stays a simple
 * per-index bitmap).
 */
std::vector<ShardPlan> planShards(std::uint64_t total_runs,
                                  std::uint64_t shard_count);

/** Serialized outcome of one shard: header + delta counters. */
struct ShardDelta
{
    std::uint64_t shard = 0;
    std::uint64_t base = 0;
    std::uint64_t count = 0;
    /** CampaignEngine::signature() of the producing worker; the
     *  aggregator refuses a delta from a different configuration. */
    std::uint64_t signature = 0;
    /** The delta report's counters (CampaignReport::toMetrics). */
    std::map<std::string, std::uint64_t> counters;

    /** Flat JSON document: shard.* header keys (version, indices,
     *  signature, payload fingerprint) followed by the counters. */
    std::string toJson() const;

    /** Parse and validate a toJson document.
     *  @throws ShardError on torn input, a missing/mismatched
     *  fingerprint, or a bad version. */
    static ShardDelta fromJson(const std::string &text);
};

/** Run shard @p plan of the campaign in this process and package the
 *  delta (the library-level worker; `warped_sim shard` is a thin
 *  wrapper). */
ShardDelta runShardInProcess(const WorkloadFactory &factory,
                             const EngineConfig &cfg,
                             const ShardPlan &plan);

class ShardAggregator
{
  public:
    /**
     * @param skeleton    the orchestrator's CampaignEngine::skeleton()
     * @param signature   the orchestrator's configuration signature
     * @param total_runs  planned campaign runs
     * @param shard_count shards the campaign was split into
     */
    ShardAggregator(CampaignReport skeleton, std::uint64_t signature,
                    std::uint64_t total_runs,
                    std::uint64_t shard_count);

    /**
     * Fold one delta. Duplicate deliveries of an already-folded
     * shard are ignored (returns false) — re-issue after a worker
     * death can legitimately double-deliver.
     * @throws ShardError on a signature mismatch, an out-of-range
     *         shard index, or a range that disagrees with the plan.
     */
    bool fold(const ShardDelta &d);

    bool has(std::uint64_t shard) const;
    std::uint64_t foldedShards() const { return folded_; }
    std::uint64_t totalShards() const { return shardCount_; }
    bool complete() const { return folded_ == shardCount_; }

    /** Shard indices not folded yet, ascending. */
    std::vector<std::uint64_t> pendingShards() const;

    /** The reconstructed campaign report.
     *  @throws ShardError unless complete(). */
    CampaignReport report() const;

    /** Runs folded so far (sum of shard counts). */
    std::uint64_t sampled() const;

    /** Aggregator state as a flat JSON document (crash-safe resume
     *  surface for the orchestrator; fingerprinted like a
     *  checkpoint). */
    std::string stateJson() const;

    /**
     * Restore a stateJson document. A state written for a different
     * signature / shard layout is warned about and ignored (returns
     * false) — the stale-checkpoint semantics; a torn or damaged
     * document throws ShardError.
     */
    bool loadState(const std::string &text);

  private:
    CampaignReport skel_;
    std::uint64_t signature_ = 0;
    std::uint64_t totalRuns_ = 0;
    std::uint64_t shardCount_ = 0;
    std::uint64_t folded_ = 0;
    std::vector<ShardPlan> plan_;
    std::vector<bool> have_;
    std::map<std::string, std::uint64_t> sum_;
};

} // namespace fault
} // namespace warped

#endif // WARPED_FAULT_SHARD_HH
