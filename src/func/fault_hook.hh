/**
 * @file
 * The execution-unit fault boundary.
 *
 * Every per-lane result the simulator computes (arithmetic results and
 * memory-address computations) passes through a FaultHook keyed by the
 * *physical* SIMT lane that produced it. The fault-injection framework
 * implements this interface; the default NullFaultHook is the
 * fault-free machine. Because primary execution and DMR verification
 * run on different physical lanes (RFU pairing, lane shuffling), a
 * per-lane fault makes them disagree — which is exactly what the
 * paper's comparator detects.
 */

#ifndef WARPED_FUNC_FAULT_HOOK_HH
#define WARPED_FUNC_FAULT_HOOK_HH

#include "common/types.hh"
#include "isa/opcode.hh"

namespace warped {
namespace func {

/** Where/when a lane-level computation happened. */
struct FaultCtx
{
    unsigned sm = 0;        ///< streaming multiprocessor index
    unsigned lane = 0;      ///< physical SIMT lane (post-mapping)
    isa::UnitType unit = isa::UnitType::SP;
    Cycle cycle = 0;
    bool isAddress = false; ///< memory-address computation
};

class FaultHook
{
  public:
    virtual ~FaultHook() = default;

    /** Transform the pure result into what the (possibly faulty)
     *  physical unit actually produces. */
    virtual RegValue apply(RegValue pure, const FaultCtx &ctx) = 0;
};

/** The fault-free machine. */
class NullFaultHook final : public FaultHook
{
  public:
    RegValue apply(RegValue pure, const FaultCtx &) override
    { return pure; }

    /** Shared singleton. The hook carries no state, so one instance
     *  may be applied concurrently from any number of simulation
     *  threads; initialization is thread-safe (function-local
     *  static). */
    static NullFaultHook &instance();
};

} // namespace func
} // namespace warped

#endif // WARPED_FUNC_FAULT_HOOK_HH
