#include "func/executor.hh"

#include <cmath>

#include "common/logging.hh"

namespace warped {
namespace func {

namespace {

std::int32_t
sdiv(std::int32_t a, std::int32_t b)
{
    if (b == 0)
        return 0; // hardware-defined: x/0 -> 0
    if (a == INT32_MIN && b == -1)
        return INT32_MIN;
    return a / b;
}

std::int32_t
smod(std::int32_t a, std::int32_t b)
{
    if (b == 0)
        return 0;
    if (a == INT32_MIN && b == -1)
        return 0;
    return a % b;
}

RegValue
boolVal(bool b)
{
    return b ? 1u : 0u;
}

} // namespace

NullFaultHook &
NullFaultHook::instance()
{
    // Magic static: thread-safe initialization; the hook itself is
    // stateless, so concurrent apply() calls are race-free.
    static NullFaultHook nullHook;
    return nullHook;
}

Executor::Executor(const arch::GpuConfig &cfg, unsigned sm_id,
                   mem::Memory &global, FaultHook &hook)
    : cfg_(cfg), smId_(sm_id), global_(global), hook_(&hook)
{
}

RegValue
Executor::computeLane(const isa::Instruction &in,
                      const std::array<RegValue, 3> &ops,
                      const LaneInfo &li)
{
    using isa::Opcode;
    const RegValue a = ops[0], b = ops[1], c = ops[2];
    const auto sa = asSigned(a), sb = asSigned(b);
    const float fa = asFloat(a), fb = asFloat(b), fc = asFloat(c);

    switch (in.op) {
      case Opcode::IADD: return a + b;
      case Opcode::ISUB: return a - b;
      case Opcode::IMUL: return a * b;
      case Opcode::IMAD: return a * b + c;
      case Opcode::IDIV: return static_cast<RegValue>(sdiv(sa, sb));
      case Opcode::IMOD: return static_cast<RegValue>(smod(sa, sb));
      case Opcode::IMIN: return sa < sb ? a : b;
      case Opcode::IMAX: return sa > sb ? a : b;
      case Opcode::AND:  return a & b;
      case Opcode::OR:   return a | b;
      case Opcode::XOR:  return a ^ b;
      case Opcode::NOT:  return ~a;
      case Opcode::SHL:  return a << (b & 31u);
      case Opcode::SHR:  return a >> (b & 31u);
      case Opcode::SRA:  return static_cast<RegValue>(sa >> (b & 31u));
      case Opcode::SHLI: return a << (static_cast<RegValue>(in.imm) & 31u);
      case Opcode::SHRI: return a >> (static_cast<RegValue>(in.imm) & 31u);
      case Opcode::ANDI: return a & static_cast<RegValue>(in.imm);
      case Opcode::ISETP_EQ: return boolVal(sa == sb);
      case Opcode::ISETP_NE: return boolVal(sa != sb);
      case Opcode::ISETP_LT: return boolVal(sa < sb);
      case Opcode::ISETP_LE: return boolVal(sa <= sb);
      case Opcode::ISETP_GT: return boolVal(sa > sb);
      case Opcode::ISETP_GE: return boolVal(sa >= sb);
      case Opcode::SEL:  return a != 0 ? b : c;
      case Opcode::MOV:  return a;
      case Opcode::MOVI: return static_cast<RegValue>(in.imm);
      case Opcode::IADDI:
        return a + static_cast<RegValue>(in.imm);
      case Opcode::S2R:
        switch (static_cast<isa::SpecialReg>(in.imm)) {
          case isa::SpecialReg::Tid:    return li.tid;
          case isa::SpecialReg::Ctaid:  return li.ctaid;
          case isa::SpecialReg::Ntid:   return li.ntid;
          case isa::SpecialReg::Nctaid: return li.nctaid;
          case isa::SpecialReg::LaneId: return li.laneId;
          case isa::SpecialReg::WarpId: return li.warpId;
          case isa::SpecialReg::Gtid:
            return li.ctaid * li.ntid + li.tid;
        }
        warped_panic("bad S2R selector ", in.imm);
      case Opcode::SHFL_XOR:
      case Opcode::SHFL_DOWN:
        // The executor records the *gathered* source value as
        // operand 0 (see step()), so the compute itself is identity —
        // which also makes DMR re-execution exact from the record.
        return a;
      case Opcode::I2F:  return asReg(static_cast<float>(sa));
      case Opcode::F2I:
        return static_cast<RegValue>(static_cast<std::int32_t>(fa));
      case Opcode::FADD: return asReg(fa + fb);
      case Opcode::FSUB: return asReg(fa - fb);
      case Opcode::FMUL: return asReg(fa * fb);
      case Opcode::FFMA: return asReg(std::fma(fa, fb, fc));
      case Opcode::FMIN: return asReg(std::fmin(fa, fb));
      case Opcode::FMAX: return asReg(std::fmax(fa, fb));
      case Opcode::FNEG: return asReg(-fa);
      case Opcode::FSETP_EQ: return boolVal(fa == fb);
      case Opcode::FSETP_NE: return boolVal(fa != fb);
      case Opcode::FSETP_LT: return boolVal(fa < fb);
      case Opcode::FSETP_LE: return boolVal(fa <= fb);
      case Opcode::FSETP_GT: return boolVal(fa > fb);
      case Opcode::FSETP_GE: return boolVal(fa >= fb);
      case Opcode::SIN:   return asReg(std::sin(fa));
      case Opcode::COS:   return asReg(std::cos(fa));
      case Opcode::SQRT:  return asReg(std::sqrt(fa));
      case Opcode::RSQRT: return asReg(1.0f / std::sqrt(fa));
      case Opcode::EX2:   return asReg(std::exp2(fa));
      case Opcode::LG2:   return asReg(std::log2(fa));
      case Opcode::RCP:   return asReg(1.0f / fa);
      case Opcode::LDG:
      case Opcode::STG:
      case Opcode::LDS:
      case Opcode::STS:
        // Effective-address computation: the part of a memory
        // instruction Warped-DMR verifies (data is ECC-protected).
        return a + static_cast<RegValue>(in.imm);
      case Opcode::BRA:
      case Opcode::BRZ:
      case Opcode::BRNZ:
      case Opcode::BAR:
      case Opcode::EXIT:
      case Opcode::NOP:
        return 0;
    }
    warped_panic("unhandled opcode in computeLane");
}

ExecRecord
Executor::step(arch::WarpContext &warp, const isa::Program &prog,
               mem::Memory &shared, const unsigned *lane_of, Cycle now)
{
    ExecRecord rec;
    stepInto(warp, prog, shared, lane_of, now, rec);
    return rec;
}

void
Executor::stepInto(arch::WarpContext &warp, const isa::Program &prog,
                   mem::Memory &shared, const unsigned *lane_of,
                   Cycle now, ExecRecord &rec,
                   std::vector<MemUndo> *undo)
{
    using isa::Opcode;

    const Pc pc = warp.stack().pc();
    const isa::Instruction &in = prog.at(pc);
    const LaneMask active = warp.stack().activeMask();
    const unsigned ws = warp.warpSize();

    rec.instr = in;
    rec.pc = pc;
    rec.active = active;
    rec.wasBranch = false;
    rec.wasBarrier = false;
    rec.wasExit = false;
    rec.warpId = 0;
    rec.traceId = 0;

    if (active.none())
        warped_panic("executing with empty active mask at pc ", pc);

    // Per-instruction invariants, hoisted out of the lane loop.
    const unsigned n_srcs = in.numSrcs();
    const bool is_shuffle = isa::opcodeIsShuffle(in.op);
    const bool hooked = in.hasDst() || in.isMem();
    FaultCtx ctx;
    ctx.sm = smId_;
    ctx.unit = in.unit();
    ctx.cycle = now;
    ctx.isAddress = in.isMem();
    LaneInfo li;
    li.ctaid = static_cast<std::int32_t>(warp.blockId());
    li.ntid = static_cast<std::int32_t>(warp.blockDim());
    li.nctaid = static_cast<std::int32_t>(warp.gridDim());
    li.warpId = static_cast<std::int32_t>(warp.warpInBlock());

    // Gather operands and compute per-thread results.
    for (unsigned slot = 0; slot < ws; ++slot) {
        if (!active.test(slot))
            continue;
        std::array<RegValue, 3> ops{0, 0, 0};
        for (unsigned s = 0; s < n_srcs; ++s) {
            ops[s] = warp.reg(slot, in.src[s].idx);
            rec.operands[s][slot] = ops[s];
        }
        if (is_shuffle) {
            // Cross-lane gather: resolve the source slot now and
            // record its value as the operand. Inactive or
            // out-of-range sources fall back to the lane's own value
            // (CUDA shuffle semantics for missing lanes).
            unsigned src_slot = slot;
            if (in.op == isa::Opcode::SHFL_XOR) {
                src_slot = slot ^ static_cast<unsigned>(in.imm);
            } else {
                src_slot = slot + static_cast<unsigned>(in.imm);
            }
            if (src_slot < ws && active.test(src_slot))
                ops[0] = warp.reg(src_slot, in.src[0].idx);
            rec.operands[0][slot] = ops[0];
        }
        li.tid = static_cast<std::int32_t>(warp.tid(slot));
        li.laneId = static_cast<std::int32_t>(slot);
        rec.laneInfo[slot] = li;

        RegValue pure = computeLane(in, ops, li);

        if (hooked) {
            ctx.lane = lane_of ? lane_of[slot] : slot;
            pure = hook_->apply(pure, ctx);
        }
        rec.results[slot] = pure;
    }

    // Perform architectural effects.
    switch (in.op) {
      case Opcode::BRA:
      case Opcode::BRZ:
      case Opcode::BRNZ: {
        rec.wasBranch = true;
        LaneMask taken;
        for (unsigned slot = 0; slot < ws; ++slot) {
            if (!active.test(slot))
                continue;
            bool t = true;
            if (in.op == Opcode::BRZ)
                t = rec.operands[0][slot] == 0;
            else if (in.op == Opcode::BRNZ)
                t = rec.operands[0][slot] != 0;
            if (t)
                taken.set(slot);
        }
        warp.stack().branch(taken, in.target, pc + 1, in.reconv);
        return;
      }
      case Opcode::BAR:
        rec.wasBarrier = true;
        warp.setAtBarrier(true);
        warp.stack().advanceTo(pc + 1);
        return;
      case Opcode::EXIT:
        rec.wasExit = true;
        warp.markExited(active);
        return;
      default:
        break;
    }

    // Memory accesses + register writes.
    for (unsigned slot = 0; slot < ws; ++slot) {
        if (!active.test(slot))
            continue;
        if (in.isMem()) {
            // A corrupted address is wrapped into the segment so the
            // simulation survives; the DMR comparator still sees the
            // raw mismatch.
            mem::Memory &m = opcodeIsSharedMem(in.op) ? shared : global_;
            Addr addr = rec.results[slot];
            addr = (addr % m.size()) & ~Addr{3};
            if (in.isLoad()) {
                warp.setReg(slot, in.dst.idx, m.readWord(addr));
            } else {
                if (undo) [[unlikely]]
                    undo->push_back({&m, addr, m.readWord(addr)});
                m.writeWord(addr, rec.operands[1][slot]);
            }
        } else if (in.hasDst()) {
            warp.setReg(slot, in.dst.idx, rec.results[slot]);
        }
    }

    warp.stack().advanceTo(pc + 1);
}

} // namespace func
} // namespace warped
