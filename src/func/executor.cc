#include "func/executor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace warped {
namespace func {

namespace {

std::int32_t
sdiv(std::int32_t a, std::int32_t b)
{
    if (b == 0)
        return 0; // hardware-defined: x/0 -> 0
    if (a == INT32_MIN && b == -1)
        return INT32_MIN;
    return a / b;
}

std::int32_t
smod(std::int32_t a, std::int32_t b)
{
    if (b == 0)
        return 0;
    if (a == INT32_MIN && b == -1)
        return 0;
    return a % b;
}

RegValue
boolVal(bool b)
{
    return b ? 1u : 0u;
}

} // namespace

NullFaultHook &
NullFaultHook::instance()
{
    // Magic static: thread-safe initialization; the hook itself is
    // stateless, so concurrent apply() calls are race-free.
    static NullFaultHook nullHook;
    return nullHook;
}

Executor::Executor(const arch::GpuConfig &cfg, unsigned sm_id,
                   mem::Memory &global, FaultHook &hook)
    : cfg_(cfg), smId_(sm_id), global_(global), hook_(&hook),
      hookIsNull_(dynamic_cast<NullFaultHook *>(&hook) != nullptr)
{
}

RegValue
Executor::computeLane(const isa::Instruction &in,
                      const std::array<RegValue, 3> &ops,
                      const LaneInfo &li)
{
    using isa::Opcode;
    const RegValue a = ops[0], b = ops[1], c = ops[2];
    const auto sa = asSigned(a), sb = asSigned(b);
    const float fa = asFloat(a), fb = asFloat(b), fc = asFloat(c);

    switch (in.op) {
      case Opcode::IADD: return a + b;
      case Opcode::ISUB: return a - b;
      case Opcode::IMUL: return a * b;
      case Opcode::IMAD: return a * b + c;
      case Opcode::IDIV: return static_cast<RegValue>(sdiv(sa, sb));
      case Opcode::IMOD: return static_cast<RegValue>(smod(sa, sb));
      case Opcode::IMIN: return sa < sb ? a : b;
      case Opcode::IMAX: return sa > sb ? a : b;
      case Opcode::AND:  return a & b;
      case Opcode::OR:   return a | b;
      case Opcode::XOR:  return a ^ b;
      case Opcode::NOT:  return ~a;
      case Opcode::SHL:  return a << (b & 31u);
      case Opcode::SHR:  return a >> (b & 31u);
      case Opcode::SRA:  return static_cast<RegValue>(sa >> (b & 31u));
      case Opcode::SHLI: return a << (static_cast<RegValue>(in.imm) & 31u);
      case Opcode::SHRI: return a >> (static_cast<RegValue>(in.imm) & 31u);
      case Opcode::ANDI: return a & static_cast<RegValue>(in.imm);
      case Opcode::ISETP_EQ: return boolVal(sa == sb);
      case Opcode::ISETP_NE: return boolVal(sa != sb);
      case Opcode::ISETP_LT: return boolVal(sa < sb);
      case Opcode::ISETP_LE: return boolVal(sa <= sb);
      case Opcode::ISETP_GT: return boolVal(sa > sb);
      case Opcode::ISETP_GE: return boolVal(sa >= sb);
      case Opcode::SEL:  return a != 0 ? b : c;
      case Opcode::MOV:  return a;
      case Opcode::MOVI: return static_cast<RegValue>(in.imm);
      case Opcode::IADDI:
        return a + static_cast<RegValue>(in.imm);
      case Opcode::S2R:
        switch (static_cast<isa::SpecialReg>(in.imm)) {
          case isa::SpecialReg::Tid:    return li.tid;
          case isa::SpecialReg::Ctaid:  return li.ctaid;
          case isa::SpecialReg::Ntid:   return li.ntid;
          case isa::SpecialReg::Nctaid: return li.nctaid;
          case isa::SpecialReg::LaneId: return li.laneId;
          case isa::SpecialReg::WarpId: return li.warpId;
          case isa::SpecialReg::Gtid:
            return li.ctaid * li.ntid + li.tid;
        }
        warped_panic("bad S2R selector ", in.imm);
      case Opcode::SHFL_XOR:
      case Opcode::SHFL_DOWN:
        // The executor records the *gathered* source value as
        // operand 0 (see step()), so the compute itself is identity —
        // which also makes DMR re-execution exact from the record.
        return a;
      case Opcode::I2F:  return asReg(static_cast<float>(sa));
      case Opcode::F2I:
        return static_cast<RegValue>(static_cast<std::int32_t>(fa));
      case Opcode::FADD: return asReg(fa + fb);
      case Opcode::FSUB: return asReg(fa - fb);
      case Opcode::FMUL: return asReg(fa * fb);
      case Opcode::FFMA: return asReg(std::fma(fa, fb, fc));
      case Opcode::FMIN: return asReg(std::fmin(fa, fb));
      case Opcode::FMAX: return asReg(std::fmax(fa, fb));
      case Opcode::FNEG: return asReg(-fa);
      case Opcode::FSETP_EQ: return boolVal(fa == fb);
      case Opcode::FSETP_NE: return boolVal(fa != fb);
      case Opcode::FSETP_LT: return boolVal(fa < fb);
      case Opcode::FSETP_LE: return boolVal(fa <= fb);
      case Opcode::FSETP_GT: return boolVal(fa > fb);
      case Opcode::FSETP_GE: return boolVal(fa >= fb);
      case Opcode::SIN:   return asReg(std::sin(fa));
      case Opcode::COS:   return asReg(std::cos(fa));
      case Opcode::SQRT:  return asReg(std::sqrt(fa));
      case Opcode::RSQRT: return asReg(1.0f / std::sqrt(fa));
      case Opcode::EX2:   return asReg(std::exp2(fa));
      case Opcode::LG2:   return asReg(std::log2(fa));
      case Opcode::RCP:   return asReg(1.0f / fa);
      case Opcode::LDG:
      case Opcode::STG:
      case Opcode::LDS:
      case Opcode::STS:
        // Effective-address computation: the part of a memory
        // instruction Warped-DMR verifies (data is ECC-protected).
        return a + static_cast<RegValue>(in.imm);
      case Opcode::BRA:
      case Opcode::BRZ:
      case Opcode::BRNZ:
      case Opcode::BAR:
      case Opcode::EXIT:
      case Opcode::NOP:
        return 0;
    }
    warped_panic("unhandled opcode in computeLane");
}

/**
 * One case of the plane switch: evaluates @p EXPR for every slot with
 * a/b/c (and their signed/float views) bound to that slot's operands.
 * The dead views are optimized away per case; keeping them in one
 * macro keeps the 50-odd cases readable and guarantees every case
 * uses exactly the computeLane expression.
 */
#define WARPED_PLANE_CASE(OP, EXPR)                                     \
    case Opcode::OP:                                                    \
        for (unsigned i = 0; i < ws; ++i) {                             \
            [[maybe_unused]] const RegValue a = A[i], b = B[i],         \
                                            c = C[i];                   \
            [[maybe_unused]] const auto sa = asSigned(a),               \
                                        sb = asSigned(b);               \
            [[maybe_unused]] const float fa = asFloat(a),               \
                                         fb = asFloat(b),               \
                                         fc = asFloat(c);               \
            out[i] = (EXPR);                                            \
        }                                                               \
        break;

void
Executor::computePlane(
    const isa::Instruction &in,
    const std::array<std::array<RegValue, kMaxWarp>, 3> &ops,
    const std::array<LaneInfo, kMaxWarp> &li, unsigned ws,
    RegValue *out)
{
    using isa::Opcode;
    const RegValue *A = ops[0].data();
    const RegValue *B = ops[1].data();
    const RegValue *C = ops[2].data();
    const auto immv = static_cast<RegValue>(in.imm);

    switch (in.op) {
      WARPED_PLANE_CASE(IADD, a + b)
      WARPED_PLANE_CASE(ISUB, a - b)
      WARPED_PLANE_CASE(IMUL, a * b)
      WARPED_PLANE_CASE(IMAD, a * b + c)
      WARPED_PLANE_CASE(IDIV, static_cast<RegValue>(sdiv(sa, sb)))
      WARPED_PLANE_CASE(IMOD, static_cast<RegValue>(smod(sa, sb)))
      WARPED_PLANE_CASE(IMIN, sa < sb ? a : b)
      WARPED_PLANE_CASE(IMAX, sa > sb ? a : b)
      WARPED_PLANE_CASE(AND, a & b)
      WARPED_PLANE_CASE(OR, a | b)
      WARPED_PLANE_CASE(XOR, a ^ b)
      WARPED_PLANE_CASE(NOT, ~a)
      WARPED_PLANE_CASE(SHL, a << (b & 31u))
      WARPED_PLANE_CASE(SHR, a >> (b & 31u))
      WARPED_PLANE_CASE(SRA, static_cast<RegValue>(sa >> (b & 31u)))
      WARPED_PLANE_CASE(SHLI, a << (immv & 31u))
      WARPED_PLANE_CASE(SHRI, a >> (immv & 31u))
      WARPED_PLANE_CASE(ANDI, a & immv)
      WARPED_PLANE_CASE(ISETP_EQ, boolVal(sa == sb))
      WARPED_PLANE_CASE(ISETP_NE, boolVal(sa != sb))
      WARPED_PLANE_CASE(ISETP_LT, boolVal(sa < sb))
      WARPED_PLANE_CASE(ISETP_LE, boolVal(sa <= sb))
      WARPED_PLANE_CASE(ISETP_GT, boolVal(sa > sb))
      WARPED_PLANE_CASE(ISETP_GE, boolVal(sa >= sb))
      WARPED_PLANE_CASE(SEL, a != 0 ? b : c)
      WARPED_PLANE_CASE(MOV, a)
      WARPED_PLANE_CASE(MOVI, immv)
      WARPED_PLANE_CASE(IADDI, a + immv)
      case Opcode::S2R:
        switch (static_cast<isa::SpecialReg>(in.imm)) {
          case isa::SpecialReg::Tid:
            for (unsigned i = 0; i < ws; ++i)
                out[i] = li[i].tid;
            break;
          case isa::SpecialReg::Ctaid:
            for (unsigned i = 0; i < ws; ++i)
                out[i] = li[i].ctaid;
            break;
          case isa::SpecialReg::Ntid:
            for (unsigned i = 0; i < ws; ++i)
                out[i] = li[i].ntid;
            break;
          case isa::SpecialReg::Nctaid:
            for (unsigned i = 0; i < ws; ++i)
                out[i] = li[i].nctaid;
            break;
          case isa::SpecialReg::LaneId:
            for (unsigned i = 0; i < ws; ++i)
                out[i] = li[i].laneId;
            break;
          case isa::SpecialReg::WarpId:
            for (unsigned i = 0; i < ws; ++i)
                out[i] = li[i].warpId;
            break;
          case isa::SpecialReg::Gtid:
            for (unsigned i = 0; i < ws; ++i)
                out[i] = li[i].ctaid * li[i].ntid + li[i].tid;
            break;
          default:
            warped_panic("bad S2R selector ", in.imm);
        }
        break;
      // Operand 0 already holds the gathered source value, so the
      // compute itself is identity (see stepInto).
      WARPED_PLANE_CASE(SHFL_XOR, a)
      WARPED_PLANE_CASE(SHFL_DOWN, a)
      WARPED_PLANE_CASE(I2F, asReg(static_cast<float>(sa)))
      WARPED_PLANE_CASE(
          F2I, static_cast<RegValue>(static_cast<std::int32_t>(fa)))
      WARPED_PLANE_CASE(FADD, asReg(fa + fb))
      WARPED_PLANE_CASE(FSUB, asReg(fa - fb))
      WARPED_PLANE_CASE(FMUL, asReg(fa * fb))
      WARPED_PLANE_CASE(FFMA, asReg(std::fma(fa, fb, fc)))
      WARPED_PLANE_CASE(FMIN, asReg(std::fmin(fa, fb)))
      WARPED_PLANE_CASE(FMAX, asReg(std::fmax(fa, fb)))
      WARPED_PLANE_CASE(FNEG, asReg(-fa))
      WARPED_PLANE_CASE(FSETP_EQ, boolVal(fa == fb))
      WARPED_PLANE_CASE(FSETP_NE, boolVal(fa != fb))
      WARPED_PLANE_CASE(FSETP_LT, boolVal(fa < fb))
      WARPED_PLANE_CASE(FSETP_LE, boolVal(fa <= fb))
      WARPED_PLANE_CASE(FSETP_GT, boolVal(fa > fb))
      WARPED_PLANE_CASE(FSETP_GE, boolVal(fa >= fb))
      WARPED_PLANE_CASE(SIN, asReg(std::sin(fa)))
      WARPED_PLANE_CASE(COS, asReg(std::cos(fa)))
      WARPED_PLANE_CASE(SQRT, asReg(std::sqrt(fa)))
      WARPED_PLANE_CASE(RSQRT, asReg(1.0f / std::sqrt(fa)))
      WARPED_PLANE_CASE(EX2, asReg(std::exp2(fa)))
      WARPED_PLANE_CASE(LG2, asReg(std::log2(fa)))
      WARPED_PLANE_CASE(RCP, asReg(1.0f / fa))
      // Effective-address computation (the verified part of a memory
      // instruction; data is ECC-protected).
      WARPED_PLANE_CASE(LDG, a + immv)
      WARPED_PLANE_CASE(STG, a + immv)
      WARPED_PLANE_CASE(LDS, a + immv)
      WARPED_PLANE_CASE(STS, a + immv)
      WARPED_PLANE_CASE(BRA, RegValue{0})
      WARPED_PLANE_CASE(BRZ, RegValue{0})
      WARPED_PLANE_CASE(BRNZ, RegValue{0})
      WARPED_PLANE_CASE(BAR, RegValue{0})
      WARPED_PLANE_CASE(EXIT, RegValue{0})
      WARPED_PLANE_CASE(NOP, RegValue{0})
      default:
        warped_panic("unhandled opcode in computePlane");
    }
}

#undef WARPED_PLANE_CASE

ExecRecord
Executor::step(arch::WarpContext &warp, const isa::Program &prog,
               mem::Memory &shared, const unsigned *lane_of, Cycle now)
{
    ExecRecord rec;
    stepInto(warp, prog, shared, lane_of, now, rec);
    return rec;
}

void
Executor::stepInto(arch::WarpContext &warp, const isa::Program &prog,
                   mem::Memory &shared, const unsigned *lane_of,
                   Cycle now, ExecRecord &rec,
                   std::vector<MemUndo> *undo)
{
    using isa::Opcode;

    const Pc pc = warp.stack().pc();
    const isa::Instruction &in = prog.at(pc);
    const LaneMask active = warp.stack().activeMask();
    const unsigned ws = warp.warpSize();

    rec.instr = in;
    rec.pc = pc;
    rec.active = active;
    rec.wasBranch = false;
    rec.wasBarrier = false;
    rec.wasExit = false;
    rec.warpId = 0;
    rec.traceId = 0;

    if (active.none())
        warped_panic("executing with empty active mask at pc ", pc);

    // Per-instruction invariants, hoisted out of the lane loops.
    const unsigned n_srcs = in.numSrcs();
    const bool hooked = in.hasDst() || in.isMem();

    // SoA operand gather: whole register planes, active and inactive
    // slots alike. The extra lanes are never observable — every
    // consumer masks by rec.active — and the plane copy vectorizes
    // where the old per-lane strided gather could not.
    for (unsigned s = 0; s < n_srcs; ++s)
        std::copy_n(warp.regPlane(in.src[s].idx), ws,
                    rec.operands[s].data());
    if (isa::opcodeIsShuffle(in.op)) [[unlikely]] {
        // Cross-lane gather: resolve each active slot's source slot
        // and record its value as operand 0. Inactive or out-of-range
        // sources keep the lane's own value (CUDA shuffle semantics
        // for missing lanes). Reads come from the register plane, not
        // the record, so the in-place permutation never observes its
        // own writes.
        const RegValue *plane = warp.regPlane(in.src[0].idx);
        for (unsigned slot = 0; slot < ws; ++slot) {
            if (!active.test(slot))
                continue;
            const unsigned src_slot =
                in.op == isa::Opcode::SHFL_XOR
                    ? slot ^ static_cast<unsigned>(in.imm)
                    : slot + static_cast<unsigned>(in.imm);
            if (src_slot < ws && active.test(src_slot))
                rec.operands[0][slot] = plane[src_slot];
        }
    }

    // Lane-info plane: only S2R reads it (computeLane/computePlane
    // ignore li for every other opcode, and so do all the record's
    // downstream consumers — verification re-executes the same
    // opcode), so everything else skips the 32-slot fill and leaves
    // whatever the record held.
    if (in.op == Opcode::S2R) {
        LaneInfo li;
        li.ctaid = static_cast<std::int32_t>(warp.blockId());
        li.ntid = static_cast<std::int32_t>(warp.blockDim());
        li.nctaid = static_cast<std::int32_t>(warp.gridDim());
        li.warpId = static_cast<std::int32_t>(warp.warpInBlock());
        const auto tid0 = static_cast<std::int32_t>(warp.tid(0));
        for (unsigned slot = 0; slot < ws; ++slot) {
            li.tid = tid0 + static_cast<std::int32_t>(slot);
            li.laneId = static_cast<std::int32_t>(slot);
            rec.laneInfo[slot] = li;
        }
    }

    if (hooked) {
        // One opcode switch for the whole warp instead of one per
        // lane (results for branches/barriers are unused, so the
        // plane compute is skipped for them entirely).
        computePlane(in, rec.operands, rec.laneInfo, ws,
                     rec.results.data());
        if (!hookIsNull_) {
            // Real fault boundary: per-slot virtual dispatch, in slot
            // order, exactly the sequence the campaign hooks saw
            // before the plane split — fault campaigns stay
            // byte-identical.
            FaultCtx ctx;
            ctx.sm = smId_;
            ctx.unit = in.unit();
            ctx.cycle = now;
            ctx.isAddress = in.isMem();
            for (unsigned slot = 0; slot < ws; ++slot) {
                if (!active.test(slot))
                    continue;
                ctx.lane = lane_of ? lane_of[slot] : slot;
                rec.results[slot] =
                    hook_->apply(rec.results[slot], ctx);
            }
        }
    }

    // Perform architectural effects.
    switch (in.op) {
      case Opcode::BRA:
      case Opcode::BRZ:
      case Opcode::BRNZ: {
        rec.wasBranch = true;
        LaneMask taken;
        for (unsigned slot = 0; slot < ws; ++slot) {
            if (!active.test(slot))
                continue;
            bool t = true;
            if (in.op == Opcode::BRZ)
                t = rec.operands[0][slot] == 0;
            else if (in.op == Opcode::BRNZ)
                t = rec.operands[0][slot] != 0;
            if (t)
                taken.set(slot);
        }
        warp.stack().branch(taken, in.target, pc + 1, in.reconv);
        return;
      }
      case Opcode::BAR:
        rec.wasBarrier = true;
        warp.setAtBarrier(true);
        warp.stack().advanceTo(pc + 1);
        return;
      case Opcode::EXIT:
        rec.wasExit = true;
        warp.markExited(active);
        return;
      default:
        break;
    }

    // Memory accesses + register writes (SoA scatter).
    if (in.isMem()) {
        // A corrupted address is wrapped into the segment so the
        // simulation survives; the DMR comparator still sees the raw
        // mismatch. Power-of-two segments (the common case) wrap with
        // a mask instead of a per-lane divide.
        mem::Memory &m = opcodeIsSharedMem(in.op) ? shared : global_;
        const std::size_t msize = m.size();
        const bool pow2 = (msize & (msize - 1)) == 0;
        const auto wrap = [&](Addr addr) {
            return (pow2 ? (addr & static_cast<Addr>(msize - 1))
                         : addr % msize) &
                   ~Addr{3};
        };
        if (in.isLoad()) {
            RegValue *dst = warp.regPlane(in.dst.idx);
            for (unsigned slot = 0; slot < ws; ++slot) {
                if (!active.test(slot))
                    continue;
                dst[slot] = m.readWord(wrap(rec.results[slot]));
            }
        } else {
            for (unsigned slot = 0; slot < ws; ++slot) {
                if (!active.test(slot))
                    continue;
                const Addr addr = wrap(rec.results[slot]);
                if (undo) [[unlikely]]
                    undo->push_back({&m, addr, m.readWord(addr)});
                m.writeWord(addr, rec.operands[1][slot]);
            }
        }
    } else if (in.hasDst()) {
        // Branchless masked blend into the destination plane:
        // inactive slots rewrite their own value.
        RegValue *dst = warp.regPlane(in.dst.idx);
        for (unsigned slot = 0; slot < ws; ++slot)
            dst[slot] =
                active.test(slot) ? rec.results[slot] : dst[slot];
    }

    warp.stack().advanceTo(pc + 1);
}

} // namespace func
} // namespace warped
