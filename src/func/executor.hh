/**
 * @file
 * Functional executor: executes one warp instruction (execute-at-
 * schedule), updating architectural state, and records everything the
 * DMR machinery later needs to re-execute and compare (per-lane
 * operands, per-lane results/addresses, the lane info).
 */

#ifndef WARPED_FUNC_EXECUTOR_HH
#define WARPED_FUNC_EXECUTOR_HH

#include <algorithm>
#include <array>
#include <vector>

#include "arch/gpu_config.hh"
#include "arch/warp_context.hh"
#include "common/lane_mask.hh"
#include "func/fault_hook.hh"
#include "isa/program.hh"
#include "mem/memory.hh"

namespace warped {
namespace func {

/** Per-thread context needed to evaluate S2R. */
struct LaneInfo
{
    std::int32_t tid = 0;
    std::int32_t ctaid = 0;
    std::int32_t ntid = 0;
    std::int32_t nctaid = 0;
    std::int32_t laneId = 0;
    std::int32_t warpId = 0;
};

/** Maximum warp width the recording arrays support. */
constexpr unsigned kMaxWarp = 64;

/**
 * Undo record for one memory word clobbered by a store. The recovery
 * engine collects these during execution so a rollback can restore
 * the pre-store contents in reverse write order.
 */
struct MemUndo
{
    mem::Memory *mem = nullptr;
    Addr addr = 0;
    RegValue old = 0;
};

/**
 * Everything observable about one executed warp instruction.
 * This is the payload that flows down the timing pipeline and into
 * the DMR engine.
 */
struct ExecRecord
{
    isa::Instruction instr;
    Pc pc = 0;
    unsigned warpId = 0;      ///< warp slot within the SM
    /** Launch-unique issue id ((sm << 40) | per-SM issue index),
     *  stamped by Sm::recordIssue. Trace events reference it so the
     *  test suites can pair every verification with exactly one
     *  issue; 0 for records that never passed through an SM issue
     *  slot (unit-test fixtures). */
    std::uint64_t traceId = 0;
    LaneMask active;          ///< thread-slot active mask
    bool wasBranch = false;
    bool wasBarrier = false;
    bool wasExit = false;

    /** Per-thread-slot source operand values (index [src][slot]). */
    std::array<std::array<RegValue, kMaxWarp>, 3> operands{};
    /** Per-thread-slot result: dest value, or the computed byte
     *  address for memory instructions. */
    std::array<RegValue, kMaxWarp> results{};
    /** Per-thread-slot S2R context (verification must reproduce it). */
    std::array<LaneInfo, kMaxWarp> laneInfo{};

    /** Is there a per-lane value to verify (dst or address)? */
    bool
    verifiable() const
    {
        return instr.hasDst() || instr.isMem();
    }

    /**
     * Assign from @p o, copying only the first @p ws thread slots of
     * the per-slot planes — and only the operand planes @p o's opcode
     * reads. Headers, the active mask and every slot a consumer may
     * touch (all < @p ws, since `active` covers at most the machine's
     * warp size) match full assignment exactly; slots >= @p ws keep
     * whatever was there before. Saves ~2 KB per ReplayQ push at warp
     * size 32 vs copying the whole kMaxWarp-wide record.
     */
    void
    copyFrom(const ExecRecord &o, unsigned ws)
    {
        if (ws > kMaxWarp)
            ws = kMaxWarp;
        instr = o.instr;
        pc = o.pc;
        warpId = o.warpId;
        traceId = o.traceId;
        active = o.active;
        wasBranch = o.wasBranch;
        wasBarrier = o.wasBarrier;
        wasExit = o.wasExit;
        for (unsigned s = 0; s < o.instr.numSrcs(); ++s)
            std::copy_n(o.operands[s].data(), ws, operands[s].data());
        std::copy_n(o.results.data(), ws, results.data());
        // Lane info is only ever read back for S2R re-execution.
        if (o.instr.op == isa::Opcode::S2R)
            std::copy_n(o.laneInfo.data(), ws, laneInfo.data());
    }
};

/**
 * Executes instructions for the warps of one SM.
 */
class Executor
{
  public:
    /**
     * @param cfg     machine description (latencies unused here)
     * @param sm_id   SM index, forwarded to the fault hook
     * @param global  the GPU's global memory
     * @param hook    execution-unit fault boundary
     */
    Executor(const arch::GpuConfig &cfg, unsigned sm_id,
             mem::Memory &global, FaultHook &hook);

    /**
     * Pure per-lane computation: what the instruction produces for one
     * thread given operand values. For memory instructions this is
     * the effective byte address. Has no side effects; used by both
     * primary execution and DMR re-execution.
     */
    static RegValue computeLane(const isa::Instruction &in,
                                const std::array<RegValue, 3> &ops,
                                const LaneInfo &li);

    /**
     * Plane (structure-of-arrays) form of computeLane: evaluate the
     * instruction for all @p ws thread slots at once, writing
     * @p out [0..ws). The opcode switch runs once per warp instead of
     * once per lane, so the per-case loops vectorize. All slots are
     * computed, active or not — callers mask by ExecRecord::active.
     * Bit-identical to computeLane on every slot.
     */
    static void computePlane(
        const isa::Instruction &in,
        const std::array<std::array<RegValue, kMaxWarp>, 3> &ops,
        const std::array<LaneInfo, kMaxWarp> &li, unsigned ws,
        RegValue *out);

    /**
     * Execute the instruction at the warp's current PC for its active
     * mask: reads operands, computes per-lane results through the
     * fault hook (at physical lane = @p lane_of [slot]), performs
     * memory accesses and register writes, and advances the SIMT
     * stack.
     *
     * @param warp     warp functional state
     * @param prog     kernel image
     * @param shared   the warp's block's shared-memory segment
     * @param lane_of  thread-slot -> physical-lane permutation
     *                 (thread-core mapping, §4.2); identity when null
     * @param now      current cycle (fault-hook context)
     */
    ExecRecord step(arch::WarpContext &warp, const isa::Program &prog,
                    mem::Memory &shared, const unsigned *lane_of,
                    Cycle now);

    /**
     * step() into a caller-owned record. The hot-path variant: the
     * SM reuses one scratch ExecRecord across issues, so the ~2.6 KB
     * of per-lane arrays are not zero-initialized on every
     * instruction. Scalar fields are reset here; array slots are only
     * written for lanes in the active mask, so stale data from a
     * previous issue is never observable (every consumer masks by
     * ExecRecord::active).
     *
     * When @p undo is non-null, every store appends the clobbered
     * word's previous contents to it (recovery checkpointing); loads
     * and register writes need no entries — the recovery delta saves
     * old destination registers itself.
     */
    void stepInto(arch::WarpContext &warp, const isa::Program &prog,
                  mem::Memory &shared, const unsigned *lane_of,
                  Cycle now, ExecRecord &rec,
                  std::vector<MemUndo> *undo = nullptr);

    unsigned smId() const { return smId_; }
    FaultHook &hook() { return *hook_; }

    /** True when the fault boundary is the NullFaultHook: the hook is
     *  the identity, so execution and DMR re-execution may take the
     *  vectorized plane path with no per-lane virtual dispatch.
     *  Detected once at construction. */
    bool hookIsNull() const { return hookIsNull_; }

  private:
    const arch::GpuConfig &cfg_;
    unsigned smId_;
    mem::Memory &global_;
    FaultHook *hook_;
    bool hookIsNull_;
};

} // namespace func
} // namespace warped

#endif // WARPED_FUNC_EXECUTOR_HH
