/**
 * @file
 * Bounded per-SM store of architectural checkpoint deltas.
 *
 * One Delta is captured per issued instruction while its DMR
 * verification is outstanding: the minimal state needed to restore
 * the warp to the point *before* that instruction executed (pre-exec
 * SIMT stack, exit/barrier flags, overwritten destination registers,
 * and memory-word undo entries for stores). Deltas for one warp form
 * an ordered chain (by launch-unique traceId); a rollback restores
 * the anchor delta's pre-state after undoing every younger delta in
 * reverse order.
 *
 * The ring is bounded: pushing past capacity evicts the oldest delta
 * of the longest chain. An evicted delta can no longer anchor a
 * rollback — a later mismatch on it degrades to a structured
 * give-up, never to corruption.
 */

#ifndef WARPED_RECOVERY_CHECKPOINT_RING_HH
#define WARPED_RECOVERY_CHECKPOINT_RING_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "arch/simt_stack.hh"
#include "common/lane_mask.hh"
#include "common/types.hh"
#include "func/executor.hh"

namespace warped {
namespace recovery {

/** Undo record for one issued instruction of one warp. */
struct Delta
{
    std::uint64_t traceId = 0; ///< launch-unique issue id (anchor key)
    Pc pc = 0;
    Cycle cycle = 0;           ///< issue cycle (trace events)

    arch::SimtStack preStack;  ///< SIMT stack before execution
    LaneMask active;           ///< mask the instruction executed under
    LaneMask preExited;
    bool preAtBarrier = false;

    /** Verified clean (or will never be verified): safe to discard. */
    bool cleared = false;

    bool hasDst = false;
    RegIndex dstReg = 0;
    /** Old dst values for the active slots (indexed by slot). */
    std::array<RegValue, func::kMaxWarp> oldDst{};

    /** Old memory words clobbered by a store, in write order. */
    std::vector<func::MemUndo> memUndo;
};

class CheckpointRing
{
  public:
    CheckpointRing(unsigned num_warps, unsigned capacity)
        : chains_(num_warps), capacity_(capacity ? capacity : 1)
    {
    }

    /**
     * Append a fresh delta to @p warp's chain, evicting the oldest
     * delta of the longest chain first when the ring is full.
     * @return the staged delta (valid until the next push/pop) and
     *         whether an eviction happened.
     */
    Delta &
    push(unsigned warp, bool &evicted)
    {
        evicted = false;
        if (total_ >= capacity_) {
            evictOldest();
            evicted = true;
        }
        chains_[warp].emplace_back();
        ++total_;
        return chains_[warp].back();
    }

    std::deque<Delta> &chain(unsigned warp) { return chains_[warp]; }
    const std::deque<Delta> &
    chain(unsigned warp) const
    {
        return chains_[warp];
    }

    /** Drop cleared deltas from the front of @p warp's chain. */
    void
    popCleared(unsigned warp)
    {
        auto &c = chains_[warp];
        while (!c.empty() && c.front().cleared) {
            c.pop_front();
            --total_;
        }
    }

    /**
     * Erase the back of @p warp's chain starting at index @p from
     * (inclusive) — used after a rollback restored the anchor.
     */
    void
    trimFrom(unsigned warp, std::size_t from)
    {
        auto &c = chains_[warp];
        while (c.size() > from) {
            c.pop_back();
            --total_;
        }
    }

    /** Drop the whole chain (give-up path). */
    void
    dropChain(unsigned warp)
    {
        total_ -= chains_[warp].size();
        chains_[warp].clear();
    }

    /** Does @p warp have any not-yet-cleared delta outstanding? */
    bool
    hasUnverified(unsigned warp) const
    {
        for (const Delta &d : chains_[warp])
            if (!d.cleared)
                return true;
        return false;
    }

    std::size_t totalSize() const { return total_; }

  private:
    void
    evictOldest()
    {
        // Deterministic policy: shrink the longest chain (ties go to
        // the lowest warp id) by dropping its front — the delta least
        // likely to still be needed as an anchor.
        std::size_t victim = 0, best = 0;
        for (std::size_t w = 0; w < chains_.size(); ++w) {
            if (chains_[w].size() > best) {
                best = chains_[w].size();
                victim = w;
            }
        }
        if (best == 0)
            return;
        chains_[victim].pop_front();
        --total_;
    }

    std::vector<std::deque<Delta>> chains_;
    std::size_t capacity_;
    std::size_t total_ = 0;
};

} // namespace recovery
} // namespace warped

#endif // WARPED_RECOVERY_CHECKPOINT_RING_HH
