/**
 * @file
 * Warp-granular rollback-replay recovery engine (one per SM).
 *
 * Detection alone leaves every comparator mismatch a dead end: the
 * corrupted value has already committed (execute-at-schedule), so the
 * campaign still ends in an SDC/DUE. This module closes the loop:
 *
 *  - at every issue it captures a checkpoint Delta (pre-exec SIMT
 *    stack, exit/barrier flags, overwritten destination registers,
 *    memory undo words) into a bounded per-SM CheckpointRing;
 *  - the DMR engine reports each retired record through the
 *    dmr::RecoveryListener seam; clean verifications release deltas,
 *    a mismatch files a rollback request anchored at the mismatching
 *    issue's traceId;
 *  - the SM processes one rollback per cycle: younger deltas are
 *    undone in reverse order, the anchor's pre-state is restored, the
 *    warp's in-flight DMR records are squashed, and the warp replays
 *    from the anchor PC after a configurable penalty;
 *  - a retry budget bounds replay livelock (permanent faults hit the
 *    same mismatch forever): exceeding it degrades gracefully to a
 *    structured give-up — the warp keeps its committed state and the
 *    run remains a detection, exactly the pre-recovery behavior.
 *
 * The SM additionally gates BAR/EXIT on a fully-verified chain
 * (Sm::tryIssue), so a warp never retires or crosses a barrier with
 * unverified instructions — which is what makes a workload's final
 * stores recoverable and keeps rollbacks from ever crossing a
 * barrier (no cross-warp barrier bookkeeping to undo).
 */

#ifndef WARPED_RECOVERY_RECOVERY_MANAGER_HH
#define WARPED_RECOVERY_RECOVERY_MANAGER_HH

#include <cstdint>
#include <vector>

#include "arch/warp_context.hh"
#include "common/types.hh"
#include "protection/protection_scheme.hh"
#include "dmr/recovery_listener.hh"
#include "recovery/checkpoint_ring.hh"
#include "recovery/recovery_config.hh"
#include "recovery/recovery_stats.hh"
#include "trace/recorder.hh"

namespace warped {
namespace recovery {

class RecoveryManager : public dmr::RecoveryListener
{
  public:
    RecoveryManager(const RecoveryConfig &cfg, unsigned sm_id,
                    unsigned num_warps);

    void attachRecorder(trace::Recorder *rec) { recorder_ = rec; }

    // ---- issue side (Sm::tryIssue) -------------------------------
    /**
     * Capture the pre-execution delta for @p warp's next instruction.
     * @return the sink Executor::stepInto fills with memory undo
     *         entries; valid until commitDelta.
     */
    std::vector<func::MemUndo> *beginDelta(unsigned warp,
                                           const arch::WarpContext &ctx,
                                           const isa::Instruction &in,
                                           Cycle now);

    /**
     * Finish the delta begun by beginDelta: stamp the launch-unique
     * traceId and auto-release it when the record can never be
     * verified (branches, barriers, EXIT, NOP).
     */
    void commitDelta(unsigned warp, const func::ExecRecord &rec);

    /** A new warp was installed into slot @p warp (block dispatch):
     *  reset its give-up flag, retry budget and block window. */
    void resetWarp(unsigned warp);

    /** Warp blocked in its post-rollback penalty window? */
    bool
    blocked(unsigned warp, Cycle now) const
    {
        return blockedUntil_[warp] > now;
    }

    /** Any not-yet-verified delta (or pending rollback) outstanding? */
    bool hasUnverified(unsigned warp) const;

    bool gaveUp(unsigned warp) const { return gaveUp_[warp] != 0; }

    /** Count a BAR/EXIT gating stall (kept here so DmrStats stays
     *  frozen and disabled metrics stay byte-identical). */
    void countRetireStall() { ++stats_.retireStalls; }

    // ---- dmr::RecoveryListener -----------------------------------
    void onVerified(const func::ExecRecord &rec, bool mismatch,
                    Cycle now) override;
    void onUnprotected(const func::ExecRecord &rec) override;

    // ---- tick side (Sm::tick) ------------------------------------
    bool hasPendingRollback() const { return pendingCount_ > 0; }

    /** Lowest warp id with a pending rollback request (-1 if none). */
    int nextPendingWarp() const;

    struct Outcome
    {
        bool rolledBack = false;
        bool gaveUp = false;
        Pc resumePc = 0;
        std::uint64_t anchor = 0;
        unsigned undone = 0;
    };

    /**
     * Execute the pending rollback for @p warp: undo every delta
     * younger than the anchor (reverse order), restore the anchor's
     * pre-state into @p ctx, squash the warp's in-flight DMR records
     * in @p engine, and trim the chain. Degrades to a give-up when
     * the anchor was evicted or the retry budget is exhausted.
     */
    Outcome rollback(unsigned warp, arch::WarpContext &ctx,
                     protection::ProtectionScheme &engine, Cycle now);

    /** Quiescent: no rollback requests outstanding (drain check). */
    bool idle() const { return pendingCount_ == 0; }

    const RecoveryStats &stats() const { return stats_; }
    const RecoveryConfig &config() const { return cfg_; }
    const CheckpointRing &ring() const { return ring_; }

  private:
    /** Mark the delta with @p trace_id cleared and pop the chain's
     *  cleared prefix; a fully-drained chain resets the budget. */
    void release(unsigned warp, std::uint64_t trace_id, bool unprotected);

    Outcome doGiveUp(unsigned warp, std::uint64_t anchor, Cycle now);

    [[gnu::noinline]]
    void emit(trace::EventKind kind, unsigned warp, Pc pc,
              std::uint64_t a0, std::uint64_t a1, Cycle now);

    RecoveryConfig cfg_;
    unsigned smId_;
    unsigned numWarps_;
    CheckpointRing ring_;
    RecoveryStats stats_;
    trace::Recorder *recorder_ = nullptr;

    /** Per-warp rollback request: anchor traceId, 0 = none. */
    std::vector<std::uint64_t> pendingAnchor_;
    std::vector<Cycle> blockedUntil_;
    std::vector<unsigned> attempts_;
    std::vector<std::uint8_t> gaveUp_;
    unsigned pendingCount_ = 0;
};

} // namespace recovery
} // namespace warped

#endif // WARPED_RECOVERY_RECOVERY_MANAGER_HH
