/**
 * @file
 * Knobs for the warp-granular checkpoint/rollback-replay recovery
 * engine. Default-constructed config is fully disabled: every hot
 * path in Sm/DmrEngine reduces to a single null-pointer test and the
 * simulation stays byte-identical to a build without the module.
 */

#ifndef WARPED_RECOVERY_RECOVERY_CONFIG_HH
#define WARPED_RECOVERY_RECOVERY_CONFIG_HH

#include <string>

#include "common/logging.hh"

namespace warped {
namespace recovery {

struct RecoveryConfig
{
    /** Master switch. Requires DMR to be enabled (Gpu validates). */
    bool enabled = false;

    /**
     * Rollbacks allowed per incident window (between two points where
     * the warp's checkpoint chain fully verifies). A mismatch past
     * the budget degrades to a structured give-up: the warp keeps its
     * committed (possibly corrupt) state and the run stays a
     * detection, never silent corruption.
     */
    unsigned retryBudget = 3;

    /** Total checkpoint deltas retained per SM (oldest evicted). */
    unsigned ringCapacity = 4096;

    /** Cycles a warp stays blocked after its state is restored. */
    unsigned rollbackPenalty = 8;

    static RecoveryConfig off() { return {}; }

    static RecoveryConfig
    paperDefault()
    {
        RecoveryConfig c;
        c.enabled = true;
        return c;
    }

    void
    validate() const
    {
        if (!enabled)
            return;
        if (ringCapacity == 0)
            warped_panic("recovery.ringCapacity must be > 0");
    }

    std::string
    toString() const
    {
        if (!enabled)
            return "recovery=off";
        return "recovery=on budget=" + std::to_string(retryBudget) +
               " ring=" + std::to_string(ringCapacity) +
               " penalty=" + std::to_string(rollbackPenalty);
    }
};

} // namespace recovery
} // namespace warped

#endif // WARPED_RECOVERY_RECOVERY_CONFIG_HH
