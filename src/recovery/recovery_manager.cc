#include "recovery/recovery_manager.hh"

#include <algorithm>

#include "common/logging.hh"

namespace warped {
namespace recovery {

RecoveryManager::RecoveryManager(const RecoveryConfig &cfg, unsigned sm_id,
                                 unsigned num_warps)
    : cfg_(cfg), smId_(sm_id), numWarps_(num_warps),
      ring_(num_warps, cfg.ringCapacity),
      pendingAnchor_(num_warps, 0), blockedUntil_(num_warps, 0),
      attempts_(num_warps, 0), gaveUp_(num_warps, 0)
{
    cfg_.validate();
}

void
RecoveryManager::emit(trace::EventKind kind, unsigned warp, Pc pc,
                      std::uint64_t a0, std::uint64_t a1, Cycle now)
{
    if (!recorder_)
        return;
    trace::Event ev;
    ev.cycle = now;
    ev.kind = kind;
    ev.unit = trace::kNoUnit;
    ev.warp = warp;
    ev.pc = pc;
    ev.a0 = a0;
    ev.a1 = a1;
    recorder_->record(smId_, ev);
}

std::vector<func::MemUndo> *
RecoveryManager::beginDelta(unsigned warp, const arch::WarpContext &ctx,
                            const isa::Instruction &in, Cycle now)
{
    bool evicted = false;
    Delta &d = ring_.push(warp, evicted);
    if (evicted)
        ++stats_.evictions;

    d.traceId = 0; // stamped by commitDelta
    d.pc = ctx.stack().pc();
    d.cycle = now;
    d.preStack = ctx.stack();
    d.active = ctx.stack().activeMask();
    d.preExited = ctx.exited();
    d.preAtBarrier = ctx.atBarrier();
    d.cleared = false;
    d.hasDst = in.hasDst();
    d.memUndo.clear();
    if (d.hasDst) {
        d.dstReg = in.dst.idx;
        unsigned saved = 0;
        const unsigned ws = ctx.warpSize();
        for (unsigned slot = 0; slot < ws; ++slot) {
            if (!d.active.test(slot))
                continue;
            d.oldDst[slot] = ctx.reg(slot, d.dstReg);
            ++saved;
        }
        stats_.checkpointedRegs += saved;
    }
    return &d.memUndo;
}

void
RecoveryManager::commitDelta(unsigned warp, const func::ExecRecord &rec)
{
    auto &chain = ring_.chain(warp);
    if (chain.empty())
        warped_panic("commitDelta without beginDelta (warp ", warp, ")");
    Delta &d = chain.back();
    d.traceId = rec.traceId;
    stats_.memUndoEntries += d.memUndo.size();
    ++stats_.checkpoints;
    if (recorder_) [[unlikely]]
        emit(trace::EventKind::Checkpoint, warp, d.pc, d.traceId,
             chain.size(), d.cycle);
    if (!rec.verifiable()) {
        // Branch / BAR / EXIT / NOP: never enters the comparator, so
        // its delta only exists to be undone by a younger anchor —
        // and can be dropped as soon as it reaches the chain front.
        d.cleared = true;
        ring_.popCleared(warp);
    }
}

void
RecoveryManager::resetWarp(unsigned warp)
{
    ring_.dropChain(warp);
    if (pendingAnchor_[warp] != 0) {
        pendingAnchor_[warp] = 0;
        --pendingCount_;
    }
    blockedUntil_[warp] = 0;
    attempts_[warp] = 0;
    gaveUp_[warp] = 0;
}

bool
RecoveryManager::hasUnverified(unsigned warp) const
{
    return pendingAnchor_[warp] != 0 || ring_.hasUnverified(warp);
}

void
RecoveryManager::release(unsigned warp, std::uint64_t trace_id,
                         bool unprotected)
{
    auto &chain = ring_.chain(warp);
    for (Delta &d : chain) {
        if (d.traceId != trace_id)
            continue;
        d.cleared = true;
        if (unprotected)
            ++stats_.unprotectedCommits;
        break;
    }
    ring_.popCleared(warp);
    // The incident window closed: every outstanding instruction of
    // the warp verified clean, so a future fault gets a fresh budget.
    if (chain.empty() && pendingAnchor_[warp] == 0 && !gaveUp_[warp])
        attempts_[warp] = 0;
}

void
RecoveryManager::onVerified(const func::ExecRecord &rec, bool mismatch,
                            Cycle now)
{
    (void)now;
    const unsigned w = rec.warpId;
    if (w >= numWarps_)
        return; // unit-test fixture record: nothing checkpointed
    if (!mismatch) {
        release(w, rec.traceId, false);
        return;
    }
    if (gaveUp_[w])
        return; // structured degradation: stay detection-only
    if (pendingAnchor_[w] == 0) {
        pendingAnchor_[w] = rec.traceId;
        ++pendingCount_;
    } else {
        pendingAnchor_[w] = std::min(pendingAnchor_[w], rec.traceId);
    }
}

void
RecoveryManager::onUnprotected(const func::ExecRecord &rec)
{
    const unsigned w = rec.warpId;
    if (w >= numWarps_)
        return;
    release(w, rec.traceId, true);
}

int
RecoveryManager::nextPendingWarp() const
{
    for (unsigned w = 0; w < numWarps_; ++w)
        if (pendingAnchor_[w] != 0)
            return static_cast<int>(w);
    return -1;
}

RecoveryManager::Outcome
RecoveryManager::doGiveUp(unsigned warp, std::uint64_t anchor, Cycle now)
{
    gaveUp_[warp] = 1;
    ring_.dropChain(warp);
    ++stats_.giveUps;
    emit(trace::EventKind::RecoveryGiveUp, warp, 0, anchor,
         attempts_[warp], now);
    Outcome o;
    o.gaveUp = true;
    o.anchor = anchor;
    return o;
}

RecoveryManager::Outcome
RecoveryManager::rollback(unsigned warp, arch::WarpContext &ctx,
                          protection::ProtectionScheme &engine,
                          Cycle now)
{
    if (pendingAnchor_[warp] == 0)
        warped_panic("rollback without a pending request (warp ", warp,
                     ")");
    const std::uint64_t anchor = pendingAnchor_[warp];
    pendingAnchor_[warp] = 0;
    --pendingCount_;

    auto &chain = ring_.chain(warp);
    std::size_t idx = chain.size();
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].traceId == anchor) {
            idx = i;
            break;
        }
    }
    if (idx == chain.size()) {
        // Anchor evicted from the bounded ring (or never captured):
        // the pre-state is gone, recovery is impossible.
        return doGiveUp(warp, anchor, now);
    }

    ++attempts_[warp];
    if (attempts_[warp] > cfg_.retryBudget)
        return doGiveUp(warp, anchor, now);

    // Undo every delta younger than (and including) the anchor, in
    // reverse issue order: memory words first (reverse write order),
    // then the overwritten destination registers.
    unsigned undone = 0;
    for (std::size_t i = chain.size(); i-- > idx;) {
        Delta &d = chain[i];
        for (auto it = d.memUndo.rbegin(); it != d.memUndo.rend(); ++it)
            it->mem->writeWord(it->addr, it->old);
        if (d.hasDst) {
            const unsigned ws = ctx.warpSize();
            for (unsigned slot = 0; slot < ws; ++slot) {
                if (d.active.test(slot))
                    ctx.setReg(slot, d.dstReg, d.oldDst[slot]);
            }
        }
        ++undone;
    }

    const Delta &a = chain[idx];
    const Pc resume = a.pc;
    ctx.stack() = a.preStack;
    ctx.restoreExited(a.preExited);
    ctx.setAtBarrier(a.preAtBarrier);

    engine.squashWarp(warp, anchor, now);
    ring_.trimFrom(warp, idx);

    blockedUntil_[warp] = now + cfg_.rollbackPenalty;
    ++stats_.rollbacks;
    stats_.rolledBackInstrs += undone;
    stats_.recoveryCycles += cfg_.rollbackPenalty;
    emit(trace::EventKind::Rollback, warp, resume, anchor, undone, now);

    Outcome o;
    o.rolledBack = true;
    o.resumePc = resume;
    o.anchor = anchor;
    o.undone = undone;
    return o;
}

} // namespace recovery
} // namespace warped
