/**
 * @file
 * Counters produced by the recovery engine. Header-only and
 * dependency-free so stats::LaunchResult can embed a copy without a
 * library cycle. All fields stay zero when recovery is disabled;
 * the aggregator only emits recovery.* metrics when it saw at least
 * one SM with recovery enabled, keeping disabled reports
 * byte-identical to pre-recovery baselines.
 */

#ifndef WARPED_RECOVERY_RECOVERY_STATS_HH
#define WARPED_RECOVERY_RECOVERY_STATS_HH

#include <cstdint>

namespace warped {
namespace recovery {

struct RecoveryStats
{
    std::uint64_t checkpoints = 0;      ///< deltas captured at issue
    std::uint64_t checkpointedRegs = 0; ///< old dst values saved
    std::uint64_t memUndoEntries = 0;   ///< old memory words saved
    std::uint64_t rollbacks = 0;        ///< successful restores
    std::uint64_t rolledBackInstrs = 0; ///< deltas undone across them
    std::uint64_t giveUps = 0;          ///< budget/anchor give-ups
    std::uint64_t evictions = 0;        ///< ring-capacity evictions
    std::uint64_t retireStalls = 0;     ///< BAR/EXIT verify stalls
    std::uint64_t recoveryCycles = 0;   ///< post-rollback block cycles
    std::uint64_t unprotectedCommits = 0; ///< deltas released unverified

    void
    merge(const RecoveryStats &o)
    {
        checkpoints += o.checkpoints;
        checkpointedRegs += o.checkpointedRegs;
        memUndoEntries += o.memUndoEntries;
        rollbacks += o.rollbacks;
        rolledBackInstrs += o.rolledBackInstrs;
        giveUps += o.giveUps;
        evictions += o.evictions;
        retireStalls += o.retireStalls;
        recoveryCycles += o.recoveryCycles;
        unprotectedCommits += o.unprotectedCommits;
    }
};

} // namespace recovery
} // namespace warped

#endif // WARPED_RECOVERY_RECOVERY_STATS_HH
