#include "common/rng.hh"

#include <cassert>

namespace warped {

Rng::Rng(std::uint64_t seed)
    : state_(seed ? seed : 0x9e3779b97f4a7c15ULL)
{
}

std::uint64_t
Rng::next()
{
    // xorshift64* (Vigna, 2014).
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound > 0);
    return next() % bound;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : nextBelow(span));
}

float
Rng::nextFloat()
{
    return static_cast<float>(next() >> 40) / float(1 << 24);
}

bool
Rng::nextBool(double p)
{
    return nextFloat() < p;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
deriveSeed(std::uint64_t master, std::uint64_t stream)
{
    // Two mixing rounds separate the master/stream contributions;
    // Rng's constructor maps an (astronomically unlikely) zero to its
    // own default.
    return splitmix64(splitmix64(master) ^ (stream + 1));
}

} // namespace warped
