/**
 * @file
 * LaneMask: a per-warp active mask over up to 64 SIMT lanes.
 *
 * The paper's architecture uses 32-thread warps; the mask type is kept
 * 64-bit wide so experimental configurations (e.g. 8-lane clusters or
 * wider warps) need no code changes.
 */

#ifndef WARPED_COMMON_LANE_MASK_HH
#define WARPED_COMMON_LANE_MASK_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>

namespace warped {

/**
 * Dense bit mask of SIMT lanes. Bit i set means lane/thread i is active
 * for the instruction under consideration.
 */
class LaneMask
{
  public:
    constexpr LaneMask() : bits_(0) {}
    constexpr explicit LaneMask(std::uint64_t bits) : bits_(bits) {}

    /** Mask with the low @p n bits set (all lanes of an n-wide warp). */
    static constexpr LaneMask
    full(unsigned n)
    {
        assert(n <= 64);
        return LaneMask(n == 64 ? ~0ULL : ((1ULL << n) - 1));
    }

    /** Mask with only lane @p i set. */
    static constexpr LaneMask
    single(unsigned i)
    {
        assert(i < 64);
        return LaneMask(1ULL << i);
    }

    constexpr bool test(unsigned i) const { return (bits_ >> i) & 1ULL; }
    constexpr void set(unsigned i) { bits_ |= (1ULL << i); }
    constexpr void clear(unsigned i) { bits_ &= ~(1ULL << i); }

    constexpr void
    assign(unsigned i, bool v)
    {
        if (v)
            set(i);
        else
            clear(i);
    }

    /** Number of active lanes. */
    constexpr unsigned count() const { return std::popcount(bits_); }
    constexpr bool any() const { return bits_ != 0; }
    constexpr bool none() const { return bits_ == 0; }

    /** True iff all of the low @p n lanes are active. */
    constexpr bool
    allOf(unsigned n) const
    {
        return (bits_ & full(n).bits_) == full(n).bits_;
    }

    /** Index of the lowest set lane; undefined when none(). */
    constexpr unsigned
    lowest() const
    {
        assert(any());
        return std::countr_zero(bits_);
    }

    constexpr std::uint64_t raw() const { return bits_; }

    constexpr LaneMask operator&(LaneMask o) const
    { return LaneMask(bits_ & o.bits_); }
    constexpr LaneMask operator|(LaneMask o) const
    { return LaneMask(bits_ | o.bits_); }
    constexpr LaneMask operator^(LaneMask o) const
    { return LaneMask(bits_ ^ o.bits_); }
    constexpr LaneMask operator~() const { return LaneMask(~bits_); }
    constexpr LaneMask &operator&=(LaneMask o)
    { bits_ &= o.bits_; return *this; }
    constexpr LaneMask &operator|=(LaneMask o)
    { bits_ |= o.bits_; return *this; }
    constexpr bool operator==(const LaneMask &) const = default;

    /**
     * Extract the @p width -bit sub-mask covering one SIMT cluster.
     * @param cluster cluster index within the warp
     * @param width   lanes per cluster
     */
    constexpr std::uint64_t
    clusterBits(unsigned cluster, unsigned width) const
    {
        const std::uint64_t field =
            width == 64 ? ~0ULL : ((1ULL << width) - 1);
        return (bits_ >> (cluster * width)) & field;
    }

    /** Render as "110...01", lane 0 leftmost, for diagnostics. */
    std::string
    toString(unsigned n) const
    {
        std::string s;
        s.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            s.push_back(test(i) ? '1' : '0');
        return s;
    }

  private:
    std::uint64_t bits_;
};

} // namespace warped

#endif // WARPED_COMMON_LANE_MASK_HH
