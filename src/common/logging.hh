/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() — a simulator bug: something that must never happen did.
 * fatal() — a user/configuration error the simulation cannot survive.
 * warn()  — suspicious but survivable.
 * inform() — status output.
 *
 * Thread-safe: the verbosity flag is atomic and console output is
 * serialized by a mutex, so concurrent simulations (sim::RunPool
 * workers) never interleave half-written lines.
 */

#ifndef WARPED_COMMON_LOGGING_HH
#define WARPED_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace warped {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Toggle warn()/inform() console output (tests silence it).
 *  Safe to call from any thread. */
void setVerbose(bool verbose);
bool verbose();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace warped

#define warped_panic(...) \
    ::warped::panicImpl(__FILE__, __LINE__, \
                        ::warped::detail::format(__VA_ARGS__))
#define warped_fatal(...) \
    ::warped::fatalImpl(__FILE__, __LINE__, \
                        ::warped::detail::format(__VA_ARGS__))
#define warped_warn(...) \
    ::warped::warnImpl(::warped::detail::format(__VA_ARGS__))
#define warped_inform(...) \
    ::warped::informImpl(::warped::detail::format(__VA_ARGS__))

#endif // WARPED_COMMON_LOGGING_HH
