/**
 * @file
 * Thread-local recycling pool for large byte buffers.
 *
 * Fault campaigns construct one `mem::Memory` (8 MB of global memory
 * for the reference workloads) per launch; letting the allocator hand
 * those pages back to the kernel between launches costs an
 * mmap/munmap pair plus ~2k soft page faults per 8 MB buffer, every
 * launch. The pool keeps a handful of retired buffers per thread and
 * re-zeroes them on reuse, so steady-state campaign launches touch
 * only warm pages.
 *
 * Thread-local on purpose: campaign runners fan launches out across
 * worker threads (`--jobs N`), and a per-thread free list needs no
 * locking and never migrates pages between cores.
 */

#ifndef WARPED_COMMON_BUFFER_POOL_HH
#define WARPED_COMMON_BUFFER_POOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace warped {
namespace common {

/**
 * Get a zeroed buffer of exactly @p bytes. Served from this thread's
 * pool when a retired buffer of the same size is available (re-zeroed
 * before return), freshly allocated otherwise.
 */
std::vector<std::uint8_t> acquireBuffer(std::size_t bytes);

/**
 * Retire @p buf to this thread's pool for a later acquireBuffer of
 * the same size. Buffers below the pooling threshold, and any beyond
 * the per-thread retention cap, are simply freed. Safe to call with a
 * moved-from (empty) vector.
 */
void releaseBuffer(std::vector<std::uint8_t> &&buf);

} // namespace common
} // namespace warped

#endif // WARPED_COMMON_BUFFER_POOL_HH
