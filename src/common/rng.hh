/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Everything stochastic in the simulator (ReplayQ candidate picks,
 * fault-injection campaigns, workload input generation) draws from a
 * seeded Rng so every figure in EXPERIMENTS.md is bit-reproducible.
 */

#ifndef WARPED_COMMON_RNG_HH
#define WARPED_COMMON_RNG_HH

#include <cstdint>

namespace warped {

/** xorshift64* generator: tiny, fast and statistically adequate. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t state_;
};

/**
 * One step of the splitmix64 output function (Steele et al.): a
 * bijective 64-bit mix with good avalanche behaviour.
 */
std::uint64_t splitmix64(std::uint64_t x);

/**
 * Derive an independent per-run seed from a campaign master seed.
 *
 * Each (master, stream) pair yields a statistically independent seed,
 * so parallel campaign runs can each own a private Rng while staying
 * bit-identical to the sequential order — run i's draws never depend
 * on how many draws run i-1 made, or on which thread executed it.
 */
std::uint64_t deriveSeed(std::uint64_t master, std::uint64_t stream);

} // namespace warped

#endif // WARPED_COMMON_RNG_HH
