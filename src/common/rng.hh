/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Everything stochastic in the simulator (ReplayQ candidate picks,
 * fault-injection campaigns, workload input generation) draws from a
 * seeded Rng so every figure in EXPERIMENTS.md is bit-reproducible.
 */

#ifndef WARPED_COMMON_RNG_HH
#define WARPED_COMMON_RNG_HH

#include <cstdint>

namespace warped {

/** xorshift64* generator: tiny, fast and statistically adequate. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t state_;
};

} // namespace warped

#endif // WARPED_COMMON_RNG_HH
