/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the frame
 * integrity check of the campaign service's socket transport
 * (sim/wire.hh). Table-driven, byte at a time; the table is built
 * once at first use.
 *
 * The standard check value applies: crc32 of the ASCII bytes
 * "123456789" is 0xCBF43926.
 */

#ifndef WARPED_COMMON_CRC32_HH
#define WARPED_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace warped {

/** CRC-32 of @p n bytes at @p data, seeded with @p seed (pass the
 *  previous return value to continue a running checksum). */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

} // namespace warped

#endif // WARPED_COMMON_CRC32_HH
