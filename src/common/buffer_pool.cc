#include "common/buffer_pool.hh"

#include <algorithm>
#include <cstring>
#include <utility>

namespace warped {
namespace common {

namespace {

/** Buffers smaller than this are cheaper to reallocate than to pool
 *  (shared-memory segments are recycled in place by the SM anyway). */
constexpr std::size_t kMinPooledBytes = 1 << 16;

/** Retired buffers kept per thread. A campaign worker holds one
 *  global memory plus a few workload staging buffers at a time, so a
 *  short list covers the steady state without hoarding address
 *  space. */
constexpr std::size_t kMaxPooledBuffers = 4;

thread_local std::vector<std::vector<std::uint8_t>> pool;

} // namespace

std::vector<std::uint8_t>
acquireBuffer(std::size_t bytes)
{
    if (bytes >= kMinPooledBytes) {
        for (auto it = pool.begin(); it != pool.end(); ++it) {
            if (it->size() == bytes) {
                std::vector<std::uint8_t> buf = std::move(*it);
                pool.erase(it);
                std::memset(buf.data(), 0, buf.size());
                return buf;
            }
        }
    }
    return std::vector<std::uint8_t>(bytes, 0);
}

void
releaseBuffer(std::vector<std::uint8_t> &&buf)
{
    if (buf.size() < kMinPooledBytes || pool.size() >= kMaxPooledBuffers)
        return; // freed by the vector's own destructor
    pool.push_back(std::move(buf));
}

} // namespace common
} // namespace warped
