/**
 * @file
 * Fundamental scalar types shared by every Warped-DMR module.
 */

#ifndef WARPED_COMMON_TYPES_HH
#define WARPED_COMMON_TYPES_HH

#include <bit>
#include <cstdint>

namespace warped {

/** Simulation time, measured in SM core-clock cycles. */
using Cycle = std::uint64_t;

/** A 32-bit architectural register value (integers and floats share it). */
using RegValue = std::uint32_t;

/** Architectural register index within a thread's register window. */
using RegIndex = std::uint8_t;

/** Byte address into global or shared memory. */
using Addr = std::uint64_t;

/** Program counter: index of an instruction inside a Program. */
using Pc = std::uint32_t;

/** Reinterpret a register value as an IEEE-754 single-precision float. */
inline float
asFloat(RegValue v)
{
    return std::bit_cast<float>(v);
}

/** Reinterpret an IEEE-754 single-precision float as a register value. */
inline RegValue
asReg(float f)
{
    return std::bit_cast<RegValue>(f);
}

/** Reinterpret a register value as a signed 32-bit integer. */
inline std::int32_t
asSigned(RegValue v)
{
    return static_cast<std::int32_t>(v);
}

} // namespace warped

#endif // WARPED_COMMON_TYPES_HH
