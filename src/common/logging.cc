#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace warped {

namespace {
bool verboseFlag = true;
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throw instead of abort() so tests can assert on panics; the
    // uncaught-exception path still terminates the process.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (verboseFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (verboseFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace warped
