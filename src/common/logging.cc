#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace warped {

namespace {

std::atomic<bool> verboseFlag{true};

// Serializes console output so concurrent simulations (sim::RunPool
// workers) never interleave half-written lines.
std::mutex &
outputMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(outputMutex());
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    // Throw instead of abort() so tests can assert on panics; the
    // uncaught-exception path still terminates the process.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(outputMutex());
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (verbose()) {
        std::lock_guard<std::mutex> lock(outputMutex());
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
    }
}

void
informImpl(const std::string &msg)
{
    if (verbose()) {
        std::lock_guard<std::mutex> lock(outputMutex());
        std::fprintf(stderr, "info: %s\n", msg.c_str());
    }
}

} // namespace warped
