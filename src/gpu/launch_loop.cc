#include "gpu/launch_loop.hh"

#include "common/logging.hh"
#include "mem/mem_fault.hh"

namespace warped {
namespace gpu {

LaunchLoop::LaunchLoop(std::vector<std::unique_ptr<sm::Sm>> &sms,
                       const std::string &kernel_name,
                       unsigned grid_blocks, unsigned block_threads,
                       Cycle cycle_cap)
    : sms_(sms), kernelName_(kernel_name), gridBlocks_(grid_blocks),
      blockThreads_(block_threads), cycleCap_(cycle_cap)
{
}

void
LaunchLoop::attachRecorder(trace::Recorder *rec)
{
    recorder_ = rec;
    for (auto &s : sms_)
        s->attachRecorder(rec);
}

LaunchLoop::Outcome
LaunchLoop::run()
{
    unsigned next_block = 0;
    Cycle cycle = 0;
    constexpr Cycle kHardCap = 500'000'000;
    bool hung = false;
    std::uint64_t ticks = 0;

    for (;;) {
        // Keep the fault plane's clock in step so a memory upset
        // strikes mid-run at its scheduled cycle (the final value
        // also covers verify-time host readback).
        if (plane_) [[unlikely]]
            plane_->setNow(cycle);

        // Dispatch at most one block per SM per cycle.
        for (auto &s : sms_) {
            if (next_block < gridBlocks_ &&
                s->canAcceptBlock(blockThreads_)) {
                if (recorder_) {
                    trace::Event ev;
                    ev.cycle = cycle;
                    ev.kind = trace::EventKind::BlockDispatch;
                    ev.a0 = next_block;
                    ev.a1 = s->id();
                    recorder_->record(trace::kChipSm, ev);
                }
                s->assignBlock(next_block++, blockThreads_,
                               gridBlocks_);
            }
        }

        bool anything = false;
        for (auto &s : sms_) {
            if (s->busy() || !s->drained()) {
                s->tick(cycle);
                ++ticks;
                anything = true;
            }
        }
        if (!anything && next_block == gridBlocks_)
            break;
        ++cycle;
        if (cycleCap_ != 0 && cycle > cycleCap_) {
            hung = true;
            break;
        }
        if (cycle > kHardCap)
            warped_fatal("kernel '", kernelName_,
                         "' exceeded the cycle cap");
    }

    if (recorder_) {
        trace::Event ev;
        ev.cycle = cycle;
        ev.kind = trace::EventKind::LaunchEnd;
        ev.a0 = cycle;
        ev.a1 = hung ? 1 : 0;
        recorder_->record(trace::kChipSm, ev);
    }

    return {cycle, hung, next_block, ticks};
}

} // namespace gpu
} // namespace warped
