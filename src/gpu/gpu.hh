/**
 * @file
 * The GPGPU chip: global memory, the block dispatcher, and the
 * kernel-launch run loop over all SMs.
 */

#ifndef WARPED_GPU_GPU_HH
#define WARPED_GPU_GPU_HH

#include <array>
#include <memory>
#include <vector>

#include "arch/gpu_config.hh"
#include "dmr/dmr_config.hh"
#include "dmr/dmr_stats.hh"
#include "func/fault_hook.hh"
#include "isa/program.hh"
#include "mem/memory.hh"
#include "sm/sm.hh"
#include "stats/histogram.hh"

namespace warped {
namespace gpu {

/** Chip-wide, per-launch aggregated results. */
struct LaunchResult
{
    explicit LaunchResult(unsigned warp_size)
        : activeHist(warp_size + 1)
    {
    }

    std::uint64_t cycles = 0;  ///< kernel duration in core cycles
    double timeNs = 0.0;
    bool hung = false; ///< cycle cap hit (e.g. fault-corrupted loop)

    std::uint64_t issuedWarpInstrs = 0;
    std::uint64_t issuedThreadInstrs = 0;
    std::uint64_t busyCycles = 0;  ///< sum over SMs of issuing cycles
    std::uint64_t smCycles = 0;    ///< sum over SMs of ticked cycles
    std::uint64_t stallCyclesDmr = 0;
    std::uint64_t stallCyclesRaw = 0;
    std::uint64_t blocksRetired = 0;

    /** Fig 1 source: issue slots by active-thread count. */
    stats::Histogram activeHist;

    /** Fig 5 source: issue slots / thread executions per unit type. */
    std::array<std::uint64_t, isa::kNumUnitTypes> unitIssues{};
    std::array<std::uint64_t, isa::kNumUnitTypes> unitThreadExecs{};

    /** Fig 8a source: weighted mean / max same-type run lengths. */
    std::array<double, isa::kNumUnitTypes> meanTypeRun{};
    std::array<std::uint64_t, isa::kNumUnitTypes> maxTypeRun{};
    std::array<std::uint64_t, isa::kNumUnitTypes> typeRunCount{};

    /** Fig 8b source: tracked thread's RAW distances. */
    std::vector<std::uint64_t> rawDistances;

    /** Warped-DMR counters summed over SMs. */
    dmr::DmrStats dmr;

    /** Merged bounded issue trace (cycle-ordered) when enabled. */
    std::vector<sm::TraceEvent> trace;

    /** §3.4 idle-gap means (when GpuConfig::trackIdleGaps). */
    double meanSmIdleGap = 0.0;
    double meanLaneIdleGap = 0.0;

    /** Convenience: Fig 9a coverage. */
    double coverage() const { return dmr.coverage(); }
};

class Gpu
{
  public:
    /**
     * @param cfg  machine description (validated)
     * @param dcfg Warped-DMR configuration
     * @param seed determinism seed for ReplayQ picks
     * @param hook fault boundary; nullptr = fault-free
     */
    Gpu(arch::GpuConfig cfg, dmr::DmrConfig dcfg,
        std::uint64_t seed = 1, func::FaultHook *hook = nullptr);

    mem::Memory &mem() { return mem_; }
    const mem::Memory &mem() const { return mem_; }
    mem::LinearAllocator &allocator() { return alloc_; }
    const arch::GpuConfig &config() const { return cfg_; }
    const dmr::DmrConfig &dmrConfig() const { return dcfg_; }

    /**
     * Run @p prog over @p grid_blocks blocks of @p block_threads
     * threads to completion (including DMR drain) and aggregate the
     * statistics.
     *
     * @param cycle_cap 0 = the default hard cap (exceeding it is
     *        fatal: a simulator bug); > 0 = a watchdog budget —
     *        exceeding it ends the launch with `hung` set, which
     *        fault-injection campaigns use to classify kernels whose
     *        control flow a fault destroyed.
     */
    LaunchResult launch(const isa::Program &prog, unsigned grid_blocks,
                        unsigned block_threads, Cycle cycle_cap = 0);

  private:
    arch::GpuConfig cfg_;
    dmr::DmrConfig dcfg_;
    std::uint64_t seed_;
    func::FaultHook *hook_;
    mem::Memory mem_;
    mem::LinearAllocator alloc_;
};

} // namespace gpu
} // namespace warped

#endif // WARPED_GPU_GPU_HH
