/**
 * @file
 * The GPGPU chip: global memory, the block dispatcher, and the
 * kernel-launch entry point over all SMs.
 *
 * Gpu::launch composes two extracted pieces: gpu::LaunchLoop (block
 * dispatch + tick + watchdog) and stats::LaunchAggregator (folding
 * per-SM statistics into a LaunchResult). A Gpu instance is fully
 * self-contained — independent instances may run concurrently on
 * different threads (sim::RunPool relies on this).
 */

#ifndef WARPED_GPU_GPU_HH
#define WARPED_GPU_GPU_HH

#include "arch/gpu_config.hh"
#include "dmr/dmr_config.hh"
#include "func/fault_hook.hh"
#include "isa/program.hh"
#include "mem/memory.hh"
#include "protection/protection_scheme.hh"
#include "recovery/recovery_config.hh"
#include "sm/sm.hh"
#include "stats/launch_result.hh"

namespace warped {
namespace gpu {

/** Chip-wide, per-launch aggregated results (see src/stats). */
using LaunchResult = stats::LaunchResult;

class Gpu
{
  public:
    /**
     * @param cfg  machine description (validated)
     * @param dcfg Warped-DMR configuration
     * @param seed determinism seed for ReplayQ picks
     * @param hook fault boundary; nullptr = fault-free
     * @param rcfg rollback-replay recovery knobs; the default ({},
     *        disabled) leaves every recovery hook a null-pointer
     *        test and the launch results byte-identical to builds
     *        that predate the recovery engine. Enabling recovery
     *        requires DMR to be enabled (there is no detection
     *        signal to recover from otherwise).
     * @param scfg which protection backend guards each SM. The
     *        default (Warped-DMR) routes through the DmrEngine under
     *        @p dcfg, exactly as before the seam existed; recovery
     *        additionally requires a scheme whose detections arrive
     *        per instruction (schemeSupportsRecovery).
     */
    Gpu(arch::GpuConfig cfg, dmr::DmrConfig dcfg,
        std::uint64_t seed = 1, func::FaultHook *hook = nullptr,
        recovery::RecoveryConfig rcfg = {},
        protection::SchemeConfig scfg = {});

    mem::Memory &mem() { return mem_; }
    const mem::Memory &mem() const { return mem_; }
    mem::LinearAllocator &allocator() { return alloc_; }
    const arch::GpuConfig &config() const { return cfg_; }
    const dmr::DmrConfig &dmrConfig() const { return dcfg_; }
    const recovery::RecoveryConfig &recoveryConfig() const
    {
        return rcfg_;
    }
    const protection::SchemeConfig &schemeConfig() const
    {
        return scfg_;
    }

    /**
     * Run @p prog over @p grid_blocks blocks of @p block_threads
     * threads to completion (including DMR drain) and aggregate the
     * statistics.
     *
     * @param cycle_cap 0 = the default hard cap (exceeding it is
     *        fatal: a simulator bug); > 0 = a watchdog budget —
     *        exceeding it ends the launch with `hung` set, which
     *        fault-injection campaigns use to classify kernels whose
     *        control flow a fault destroyed.
     */
    LaunchResult launch(const isa::Program &prog, unsigned grid_blocks,
                        unsigned block_threads, Cycle cycle_cap = 0);

  private:
    arch::GpuConfig cfg_;
    dmr::DmrConfig dcfg_;
    recovery::RecoveryConfig rcfg_;
    protection::SchemeConfig scfg_;
    std::uint64_t seed_;
    func::FaultHook *hook_;
    mem::Memory mem_;
    mem::LinearAllocator alloc_;
};

} // namespace gpu
} // namespace warped

#endif // WARPED_GPU_GPU_HH
