#include "gpu/gpu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace warped {
namespace gpu {

Gpu::Gpu(arch::GpuConfig cfg, dmr::DmrConfig dcfg, std::uint64_t seed,
         func::FaultHook *hook)
    : cfg_(cfg), dcfg_(dcfg), seed_(seed),
      hook_(hook ? hook : &func::NullFaultHook::instance()),
      mem_(cfg.globalMemBytes), alloc_(cfg.globalMemBytes)
{
    cfg_.validate();
    dcfg_.validate();
}

LaunchResult
Gpu::launch(const isa::Program &prog, unsigned grid_blocks,
            unsigned block_threads, Cycle cycle_cap)
{
    if (grid_blocks == 0 || block_threads == 0)
        warped_fatal("launch of '", prog.name(), "' with empty grid");
    if (block_threads > cfg_.maxThreadsPerSm)
        warped_fatal("block of ", block_threads,
                     " threads exceeds SM capacity");
    if (prog.sharedBytes() > cfg_.sharedMemBytes)
        warped_fatal("kernel '", prog.name(), "' wants ",
                     prog.sharedBytes(), "B shared memory, SM has ",
                     cfg_.sharedMemBytes);

    // One chip-level memory system when contention is modeled.
    mem::MemorySystem mem_sys(cfg_);
    mem::MemorySystem *mem_sys_ptr =
        cfg_.modelMemContention ? &mem_sys : nullptr;

    // Sm holds references (config, program, memory) and is therefore
    // immovable; heap-allocate the array.
    std::vector<std::unique_ptr<sm::Sm>> sms;
    sms.reserve(cfg_.numSms);
    for (unsigned s = 0; s < cfg_.numSms; ++s) {
        sms.push_back(std::make_unique<sm::Sm>(cfg_, dcfg_, s, prog,
                                               mem_, *hook_, seed_,
                                               mem_sys_ptr));
    }

    // Fig 8b tracks one thread on one SM ("warp 1 thread ...").
    sms[0]->stats().trackRawDistance = true;
    sms[0]->stats().trackedWarpSlot =
        cfg_.warpsPerBlock(block_threads) > 1 ? 1 : 0;

    unsigned next_block = 0;
    Cycle cycle = 0;
    constexpr Cycle kHardCap = 500'000'000;
    bool hung = false;

    for (;;) {
        // Dispatch at most one block per SM per cycle.
        for (auto &s : sms) {
            if (next_block < grid_blocks &&
                s->canAcceptBlock(block_threads)) {
                s->assignBlock(next_block++, block_threads, grid_blocks);
            }
        }

        bool anything = false;
        for (auto &s : sms) {
            if (s->busy() || !s->drained()) {
                s->tick(cycle);
                anything = true;
            }
        }
        if (!anything && next_block == grid_blocks)
            break;
        ++cycle;
        if (cycle_cap != 0 && cycle > cycle_cap) {
            hung = true;
            break;
        }
        if (cycle > kHardCap)
            warped_fatal("kernel '", prog.name(),
                         "' exceeded the cycle cap");
    }

    LaunchResult r(cfg_.warpSize);
    r.hung = hung;
    r.cycles = cycle;
    r.timeNs = double(cycle) * cfg_.cyclePeriodNs();

    std::array<stats::Mean, isa::kNumUnitTypes> run_means;
    stats::Mean sm_gap, lane_gap;
    for (auto &sp : sms) {
        auto &s = *sp;
        auto &st = s.stats();
        st.typeRuns.finish();

        r.issuedWarpInstrs += st.issuedWarpInstrs;
        r.issuedThreadInstrs += st.issuedThreadInstrs;
        r.busyCycles += st.busyCycles;
        r.smCycles += st.cycles;
        r.stallCyclesDmr += st.stallCyclesDmr;
        r.stallCyclesRaw += st.stallCyclesRaw;
        r.blocksRetired += st.blocksRetired;

        for (unsigned v = 0; v <= cfg_.warpSize; ++v)
            r.activeHist.add(v, st.activeCountHist.count(v));
        for (unsigned t = 0; t < isa::kNumUnitTypes; ++t) {
            r.unitIssues[t] += st.unitIssues[t];
            r.unitThreadExecs[t] += st.unitThreadExecs[t];
            run_means[t].add(st.typeRuns.meanRunLength(t),
                             double(st.typeRuns.runCount(t)));
            r.maxTypeRun[t] =
                std::max(r.maxTypeRun[t], st.typeRuns.maxRunLength(t));
            r.typeRunCount[t] += st.typeRuns.runCount(t);
        }
        if (st.trackRawDistance)
            r.rawDistances = st.rawDistance.samples();
        r.trace.insert(r.trace.end(), st.trace.begin(),
                       st.trace.end());
        sm_gap.add(st.smIdleGap.mean(), st.smIdleGap.weight());
        lane_gap.add(st.laneIdleGap.mean(), st.laneIdleGap.weight());

        const auto &d = s.dmrEngine().stats();
        r.dmr.verifiableThreadInstrs += d.verifiableThreadInstrs;
        r.dmr.verifiedThreadInstrs += d.verifiedThreadInstrs;
        r.dmr.intraVerifiedThreads += d.intraVerifiedThreads;
        r.dmr.interVerifiedThreads += d.interVerifiedThreads;
        r.dmr.intraWarpInstrs += d.intraWarpInstrs;
        r.dmr.interWarpInstrs += d.interWarpInstrs;
        r.dmr.coexecVerifications += d.coexecVerifications;
        r.dmr.dequeueVerifications += d.dequeueVerifications;
        r.dmr.idleDrainVerifications += d.idleDrainVerifications;
        r.dmr.unitDrainVerifications += d.unitDrainVerifications;
        r.dmr.enqueues += d.enqueues;
        r.dmr.eagerStalls += d.eagerStalls;
        r.dmr.rawStalls += d.rawStalls;
        r.dmr.finalDrainCycles += d.finalDrainCycles;
        for (unsigned t = 0; t < isa::kNumUnitTypes; ++t)
            r.dmr.redundantThreadExecs[t] += d.redundantThreadExecs[t];
        r.dmr.comparisons += d.comparisons;
        r.dmr.errorsDetected += d.errorsDetected;
        r.dmr.arbitrations += d.arbitrations;
        r.dmr.arbPrimaryBad += d.arbPrimaryBad;
        r.dmr.arbCheckerBad += d.arbCheckerBad;
        r.dmr.arbInconclusive += d.arbInconclusive;
        r.dmr.sampledOutThreadInstrs += d.sampledOutThreadInstrs;
        for (const auto &ev : d.errorLog) {
            if (r.dmr.errorLog.size() < dmr::DmrStats::kMaxErrorLog)
                r.dmr.errorLog.push_back(ev);
        }
    }
    for (unsigned t = 0; t < isa::kNumUnitTypes; ++t)
        r.meanTypeRun[t] = run_means[t].mean();

    r.meanSmIdleGap = sm_gap.mean();
    r.meanLaneIdleGap = lane_gap.mean();

    std::stable_sort(r.trace.begin(), r.trace.end(),
                     [](const sm::TraceEvent &a,
                        const sm::TraceEvent &b) {
                         return a.cycle < b.cycle;
                     });

    return r;
}

} // namespace gpu
} // namespace warped
