#include "gpu/gpu.hh"

#include <optional>

#include "common/logging.hh"
#include "gpu/launch_loop.hh"
#include "protection/scheme_registry.hh"
#include "mem/memory_system.hh"
#include "stats/launch_aggregator.hh"
#include "trace/recorder.hh"

namespace warped {
namespace gpu {

Gpu::Gpu(arch::GpuConfig cfg, dmr::DmrConfig dcfg, std::uint64_t seed,
         func::FaultHook *hook, recovery::RecoveryConfig rcfg,
         protection::SchemeConfig scfg)
    : cfg_(cfg), dcfg_(dcfg), rcfg_(rcfg), scfg_(scfg), seed_(seed),
      hook_(hook ? hook : &func::NullFaultHook::instance()),
      mem_(cfg.globalMemBytes), alloc_(cfg.globalMemBytes)
{
    cfg_.validate();
    dcfg_.validate();
    rcfg_.validate();
    protection::validateSchemeConfig(scfg_);
    if (rcfg_.enabled && !protection::schemeSupportsRecovery(scfg_.id))
        warped_fatal("recovery requires per-instruction detection: "
                     "scheme '", protection::schemeCliName(scfg_.id),
                     "' reports errors (if at all) only after the "
                     "state a rollback needs is gone");
    if (rcfg_.enabled && protection::schemeUsesDmrEngine(scfg_.id) &&
        !dcfg_.enabled)
        warped_fatal("recovery requires DMR: rollback-replay is "
                     "triggered by comparator mismatches, which only "
                     "the DMR engine produces");
}

LaunchResult
Gpu::launch(const isa::Program &prog, unsigned grid_blocks,
            unsigned block_threads, Cycle cycle_cap)
{
    if (grid_blocks == 0 || block_threads == 0)
        warped_fatal("launch of '", prog.name(), "' with empty grid");
    if (block_threads > cfg_.maxThreadsPerSm)
        warped_fatal("block of ", block_threads,
                     " threads exceeds SM capacity");
    if (prog.sharedBytes() > cfg_.sharedMemBytes)
        warped_fatal("kernel '", prog.name(), "' wants ",
                     prog.sharedBytes(), "B shared memory, SM has ",
                     cfg_.sharedMemBytes);

    // One chip-level memory system when contention or banked DRAM
    // timing is modeled.
    mem::MemorySystem mem_sys(cfg_);
    mem::MemorySystem *mem_sys_ptr =
        cfg_.usesMemorySystem() ? &mem_sys : nullptr;

    // Sm holds references (config, program, memory) and is therefore
    // immovable; heap-allocate the array.
    std::vector<std::unique_ptr<sm::Sm>> sms;
    sms.reserve(cfg_.numSms);
    for (unsigned s = 0; s < cfg_.numSms; ++s) {
        sms.push_back(std::make_unique<sm::Sm>(cfg_, dcfg_, s, prog,
                                               mem_, *hook_, seed_,
                                               mem_sys_ptr, rcfg_,
                                               scfg_));
    }

    // Fig 8b tracks one thread on one SM ("warp 1 thread ...").
    sms[0]->stats().trackRawDistance = true;
    sms[0]->stats().trackedWarpSlot =
        cfg_.warpsPerBlock(block_threads) > 1 ? 1 : 0;

    // The launch's private event recorder: per-SM ring buffers, so
    // recording never crosses SM (or RunPool worker) boundaries.
    std::optional<trace::Recorder> recorder;
    if (cfg_.traceEvents)
        recorder.emplace(cfg_.numSms, cfg_.traceRingCapacity);

    LaunchLoop loop(sms, prog.name(), grid_blocks, block_threads,
                    cycle_cap);
    if (recorder)
        loop.attachRecorder(&*recorder);
    if (mem_.faultPlane()) [[unlikely]]
        loop.attachFaultPlane(mem_.faultPlane());
    const auto outcome = loop.run();

    stats::LaunchAggregator agg(cfg_.warpSize);
    for (auto &sp : sms) {
        sp->scheme().finalizeStats();
        agg.addSm(sp->stats(), sp->scheme().stats(),
                  sp->recovery() ? &sp->recovery()->stats() : nullptr);
    }
    if (recorder)
        agg.addTrace(*recorder);
    return agg.finish(outcome.cycles,
                      double(outcome.cycles) * cfg_.cyclePeriodNs(),
                      outcome.hung);
}

} // namespace gpu
} // namespace warped
