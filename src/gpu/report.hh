/**
 * @file
 * Human-readable and JSON renderings of a launch's statistics — the
 * output surface of the CLI driver and of downstream tooling.
 */

#ifndef WARPED_GPU_REPORT_HH
#define WARPED_GPU_REPORT_HH

#include <string>

#include "gpu/gpu.hh"

namespace warped {
namespace report {

/** Multi-line plain-text statistics block. */
std::string textReport(const gpu::LaunchResult &r,
                       const arch::GpuConfig &cfg);

/**
 * Single-object JSON rendering of every launch statistic (cycles,
 * histograms, unit mix, DMR counters, coverage). Stable key names;
 * no external dependencies.
 */
std::string jsonReport(const gpu::LaunchResult &r,
                       const arch::GpuConfig &cfg,
                       const std::string &workload_name = "");

} // namespace report
} // namespace warped

#endif // WARPED_GPU_REPORT_HH
