#include "gpu/report.hh"

#include <sstream>

namespace warped {
namespace report {

namespace {

/** Minimal JSON string escaper (names here are ASCII identifiers). */
std::string
jesc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
textReport(const gpu::LaunchResult &r, const arch::GpuConfig &cfg)
{
    std::ostringstream os;
    os.precision(3);
    os << "cycles:               " << r.cycles << " ("
       << r.timeNs / 1e3 << " us @ " << cfg.clockGhz << " GHz)\n";
    os << "warp instructions:    " << r.issuedWarpInstrs << "\n";
    os << "thread instructions:  " << r.issuedThreadInstrs << "\n";
    os << "blocks retired:       " << r.blocksRetired << "\n";
    os << "issue-slot unit mix:  SP " << r.unitIssues[0] << ", SFU "
       << r.unitIssues[1] << ", LD/ST " << r.unitIssues[2] << "\n";

    os << "active-thread slots:  ";
    const unsigned buckets[][2] = {
        {1, 1}, {2, 11}, {12, 21}, {22, 31}, {32, 32}};
    const char *names[] = {"1", "2-11", "12-21", "22-31", "32"};
    for (unsigned b = 0; b < 5; ++b) {
        os << names[b] << "="
           << 100.0 * r.activeHist.rangeFraction(buckets[b][0],
                                                 buckets[b][1])
           << "% ";
    }
    os << "\n";

    os << "coverage:             " << 100.0 * r.coverage() << "% ("
       << r.dmr.verifiedThreadInstrs << " / "
       << r.dmr.verifiableThreadInstrs << " thread-instrs)\n";
    os << "  intra-warp:         " << r.dmr.intraVerifiedThreads
       << "\n";
    os << "  inter-warp:         " << r.dmr.interVerifiedThreads
       << "\n";
    os << "inter-warp paths:     coexec " << r.dmr.coexecVerifications
       << ", dequeue " << r.dmr.dequeueVerifications << ", idle "
       << r.dmr.idleDrainVerifications << ", unit-drain "
       << r.dmr.unitDrainVerifications << "\n";
    os << "stalls:               eager " << r.dmr.eagerStalls
       << ", RAW " << r.dmr.rawStalls << "\n";
    os << "comparator:           " << r.dmr.comparisons
       << " checks, " << r.dmr.errorsDetected << " mismatches\n";
    if (r.dmr.sampledOutThreadInstrs) {
        os << "sampling:             " << r.dmr.sampledOutThreadInstrs
           << " thread-instrs unprotected (duty cycle)\n";
    }
    if (r.hung)
        os << "WATCHDOG:             kernel hit its cycle cap\n";
    return os.str();
}

std::string
jsonReport(const gpu::LaunchResult &r, const arch::GpuConfig &cfg,
           const std::string &workload_name)
{
    std::ostringstream os;
    os.precision(10);
    os << "{";
    if (!workload_name.empty())
        os << "\"workload\":\"" << jesc(workload_name) << "\",";
    os << "\"cycles\":" << r.cycles;
    os << ",\"time_ns\":" << r.timeNs;
    os << ",\"hung\":" << (r.hung ? "true" : "false");
    os << ",\"warp_instrs\":" << r.issuedWarpInstrs;
    os << ",\"thread_instrs\":" << r.issuedThreadInstrs;
    os << ",\"blocks\":" << r.blocksRetired;
    os << ",\"sms\":" << cfg.numSms;

    os << ",\"unit_issues\":{\"sp\":" << r.unitIssues[0]
       << ",\"sfu\":" << r.unitIssues[1] << ",\"ldst\":"
       << r.unitIssues[2] << "}";

    os << ",\"active_hist\":[";
    for (unsigned v = 0; v <= cfg.warpSize; ++v) {
        if (v)
            os << ",";
        os << r.activeHist.count(v);
    }
    os << "]";

    os << ",\"dmr\":{";
    os << "\"coverage\":" << r.coverage();
    os << ",\"verifiable\":" << r.dmr.verifiableThreadInstrs;
    os << ",\"verified\":" << r.dmr.verifiedThreadInstrs;
    os << ",\"intra\":" << r.dmr.intraVerifiedThreads;
    os << ",\"inter\":" << r.dmr.interVerifiedThreads;
    os << ",\"coexec\":" << r.dmr.coexecVerifications;
    os << ",\"dequeue\":" << r.dmr.dequeueVerifications;
    os << ",\"idle_drain\":" << r.dmr.idleDrainVerifications;
    os << ",\"unit_drain\":" << r.dmr.unitDrainVerifications;
    os << ",\"enqueues\":" << r.dmr.enqueues;
    os << ",\"eager_stalls\":" << r.dmr.eagerStalls;
    os << ",\"raw_stalls\":" << r.dmr.rawStalls;
    os << ",\"comparisons\":" << r.dmr.comparisons;
    os << ",\"errors_detected\":" << r.dmr.errorsDetected;
    os << ",\"sampled_out\":" << r.dmr.sampledOutThreadInstrs;
    os << ",\"arb_primary_bad\":" << r.dmr.arbPrimaryBad;
    os << ",\"arb_checker_bad\":" << r.dmr.arbCheckerBad;
    os << "}";

    os << "}";
    return os.str();
}

} // namespace report
} // namespace warped
