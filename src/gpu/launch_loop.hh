/**
 * @file
 * The kernel-launch run loop: block dispatch, per-cycle SM ticking
 * and the hang watchdog — extracted from Gpu::launch so orchestration
 * is separate from stats aggregation (stats::LaunchAggregator) and
 * testable on its own.
 */

#ifndef WARPED_GPU_LAUNCH_LOOP_HH
#define WARPED_GPU_LAUNCH_LOOP_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "sm/sm.hh"
#include "trace/recorder.hh"

namespace warped {

namespace mem {
class MemFaultPlane;
}

namespace gpu {

class LaunchLoop
{
  public:
    /** Outcome of driving the SMs to completion (or the watchdog). */
    struct Outcome
    {
        Cycle cycles = 0;
        bool hung = false;
        std::uint64_t dispatchedBlocks = 0;
        std::uint64_t smTicks = 0; ///< sum over SMs of ticked cycles
    };

    /**
     * @param sms           the chip's SMs (already constructed)
     * @param kernel_name   for the hard-cap fatal message
     * @param grid_blocks   blocks to dispatch
     * @param block_threads threads per block
     * @param cycle_cap     0 = the default hard cap (exceeding it is
     *        fatal); > 0 = a watchdog budget — exceeding it ends the
     *        launch with hung set.
     */
    LaunchLoop(std::vector<std::unique_ptr<sm::Sm>> &sms,
               const std::string &kernel_name, unsigned grid_blocks,
               unsigned block_threads, Cycle cycle_cap);

    /** Dispatch and tick until every SM drains (or the watchdog). */
    Outcome run();

    /**
     * Emit dispatch/launch-end events to @p rec (chip lane) and
     * cascade it to every SM. Call before run(); nullptr = silent.
     */
    void attachRecorder(trace::Recorder *rec);

    /**
     * Drive @p plane's simulation clock: the loop calls setNow once
     * per cycle so memory-cell upsets strike at their scheduled
     * cycle. Call before run(); nullptr (the default) = no fault
     * plane and zero per-cycle cost beyond one pointer test.
     */
    void attachFaultPlane(mem::MemFaultPlane *plane)
    {
        plane_ = plane;
    }

  private:
    trace::Recorder *recorder_ = nullptr;
    mem::MemFaultPlane *plane_ = nullptr;
    std::vector<std::unique_ptr<sm::Sm>> &sms_;
    const std::string &kernelName_;
    unsigned gridBlocks_;
    unsigned blockThreads_;
    Cycle cycleCap_;
};

} // namespace gpu
} // namespace warped

#endif // WARPED_GPU_LAUNCH_LOOP_HH
