file(REMOVE_RECURSE
  "CMakeFiles/fault_campaign_cli.dir/fault_campaign_cli.cpp.o"
  "CMakeFiles/fault_campaign_cli.dir/fault_campaign_cli.cpp.o.d"
  "fault_campaign_cli"
  "fault_campaign_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_campaign_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
