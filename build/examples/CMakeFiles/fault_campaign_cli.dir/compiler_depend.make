# Empty compiler generated dependencies file for fault_campaign_cli.
# This may be replaced when dependencies are built.
