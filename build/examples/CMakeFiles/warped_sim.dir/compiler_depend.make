# Empty compiler generated dependencies file for warped_sim.
# This may be replaced when dependencies are built.
