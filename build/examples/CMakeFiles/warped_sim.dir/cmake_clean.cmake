file(REMOVE_RECURSE
  "CMakeFiles/warped_sim.dir/warped_sim.cpp.o"
  "CMakeFiles/warped_sim.dir/warped_sim.cpp.o.d"
  "warped_sim"
  "warped_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
