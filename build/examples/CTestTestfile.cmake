# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_injection "/root/repo/build/examples/fault_injection_demo")
set_tests_properties(example_fault_injection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_divergence "/root/repo/build/examples/divergence_explorer")
set_tests_properties(example_divergence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_warped_sim "/root/repo/build/examples/warped_sim" "SCAN" "--sms" "4")
set_tests_properties(example_warped_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_warped_sim_dmtr "/root/repo/build/examples/warped_sim" "SHA" "--dmtr" "--sms" "4")
set_tests_properties(example_warped_sim_dmtr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_cli "/root/repo/build/examples/fault_campaign_cli" "SCAN" "--runs" "3" "--sms" "2")
set_tests_properties(example_fault_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_text_kernel "/root/repo/build/examples/warped_sim" "--kernel" "/root/repo/examples/kernels/triple.s" "--blocks" "2" "--threads" "64" "--sms" "2")
set_tests_properties(example_text_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
