file(REMOVE_RECURSE
  "CMakeFiles/fig09b_replayq_overhead.dir/fig09b_replayq_overhead.cc.o"
  "CMakeFiles/fig09b_replayq_overhead.dir/fig09b_replayq_overhead.cc.o.d"
  "fig09b_replayq_overhead"
  "fig09b_replayq_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_replayq_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
