# Empty compiler generated dependencies file for fig09b_replayq_overhead.
# This may be replaced when dependencies are built.
