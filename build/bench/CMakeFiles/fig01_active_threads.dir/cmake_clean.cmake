file(REMOVE_RECURSE
  "CMakeFiles/fig01_active_threads.dir/fig01_active_threads.cc.o"
  "CMakeFiles/fig01_active_threads.dir/fig01_active_threads.cc.o.d"
  "fig01_active_threads"
  "fig01_active_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_active_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
