# Empty dependencies file for fig01_active_threads.
# This may be replaced when dependencies are built.
