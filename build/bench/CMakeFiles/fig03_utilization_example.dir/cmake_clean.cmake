file(REMOVE_RECURSE
  "CMakeFiles/fig03_utilization_example.dir/fig03_utilization_example.cc.o"
  "CMakeFiles/fig03_utilization_example.dir/fig03_utilization_example.cc.o.d"
  "fig03_utilization_example"
  "fig03_utilization_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_utilization_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
