# Empty compiler generated dependencies file for table1_rfu_priority.
# This may be replaced when dependencies are built.
