file(REMOVE_RECURSE
  "CMakeFiles/table1_rfu_priority.dir/table1_rfu_priority.cc.o"
  "CMakeFiles/table1_rfu_priority.dir/table1_rfu_priority.cc.o.d"
  "table1_rfu_priority"
  "table1_rfu_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rfu_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
