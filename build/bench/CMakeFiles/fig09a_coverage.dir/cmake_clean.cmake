file(REMOVE_RECURSE
  "CMakeFiles/fig09a_coverage.dir/fig09a_coverage.cc.o"
  "CMakeFiles/fig09a_coverage.dir/fig09a_coverage.cc.o.d"
  "fig09a_coverage"
  "fig09a_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
