# Empty compiler generated dependencies file for fig09a_coverage.
# This may be replaced when dependencies are built.
