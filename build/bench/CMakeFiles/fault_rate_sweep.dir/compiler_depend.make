# Empty compiler generated dependencies file for fault_rate_sweep.
# This may be replaced when dependencies are built.
