file(REMOVE_RECURSE
  "CMakeFiles/fault_rate_sweep.dir/fault_rate_sweep.cc.o"
  "CMakeFiles/fault_rate_sweep.dir/fault_rate_sweep.cc.o.d"
  "fault_rate_sweep"
  "fault_rate_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_rate_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
