# Empty dependencies file for ablation_dmr_modes.
# This may be replaced when dependencies are built.
