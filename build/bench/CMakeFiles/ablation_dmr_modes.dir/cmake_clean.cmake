file(REMOVE_RECURSE
  "CMakeFiles/ablation_dmr_modes.dir/ablation_dmr_modes.cc.o"
  "CMakeFiles/ablation_dmr_modes.dir/ablation_dmr_modes.cc.o.d"
  "ablation_dmr_modes"
  "ablation_dmr_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dmr_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
