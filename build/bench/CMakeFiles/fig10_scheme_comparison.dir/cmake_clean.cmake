file(REMOVE_RECURSE
  "CMakeFiles/fig10_scheme_comparison.dir/fig10_scheme_comparison.cc.o"
  "CMakeFiles/fig10_scheme_comparison.dir/fig10_scheme_comparison.cc.o.d"
  "fig10_scheme_comparison"
  "fig10_scheme_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scheme_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
