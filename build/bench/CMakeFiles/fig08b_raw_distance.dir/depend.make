# Empty dependencies file for fig08b_raw_distance.
# This may be replaced when dependencies are built.
