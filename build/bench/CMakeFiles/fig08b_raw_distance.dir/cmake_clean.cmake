file(REMOVE_RECURSE
  "CMakeFiles/fig08b_raw_distance.dir/fig08b_raw_distance.cc.o"
  "CMakeFiles/fig08b_raw_distance.dir/fig08b_raw_distance.cc.o.d"
  "fig08b_raw_distance"
  "fig08b_raw_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_raw_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
