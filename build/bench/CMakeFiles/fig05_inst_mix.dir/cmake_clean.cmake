file(REMOVE_RECURSE
  "CMakeFiles/fig05_inst_mix.dir/fig05_inst_mix.cc.o"
  "CMakeFiles/fig05_inst_mix.dir/fig05_inst_mix.cc.o.d"
  "fig05_inst_mix"
  "fig05_inst_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_inst_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
