# Empty compiler generated dependencies file for fig05_inst_mix.
# This may be replaced when dependencies are built.
