# Empty compiler generated dependencies file for fig08a_switch_distance.
# This may be replaced when dependencies are built.
