file(REMOVE_RECURSE
  "CMakeFiles/fig08a_switch_distance.dir/fig08a_switch_distance.cc.o"
  "CMakeFiles/fig08a_switch_distance.dir/fig08a_switch_distance.cc.o.d"
  "fig08a_switch_distance"
  "fig08a_switch_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_switch_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
