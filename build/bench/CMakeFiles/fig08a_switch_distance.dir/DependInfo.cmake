
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08a_switch_distance.cc" "bench/CMakeFiles/fig08a_switch_distance.dir/fig08a_switch_distance.cc.o" "gcc" "bench/CMakeFiles/fig08a_switch_distance.dir/fig08a_switch_distance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/warped_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/warped_power.dir/DependInfo.cmake"
  "/root/repo/build/src/redundancy/CMakeFiles/warped_redundancy.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/warped_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/warped_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sm/CMakeFiles/warped_sm.dir/DependInfo.cmake"
  "/root/repo/build/src/dmr/CMakeFiles/warped_dmr.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/warped_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/warped_func.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/warped_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/warped_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/warped_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/warped_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
