file(REMOVE_RECURSE
  "CMakeFiles/warped_fault.dir/campaign.cc.o"
  "CMakeFiles/warped_fault.dir/campaign.cc.o.d"
  "CMakeFiles/warped_fault.dir/fault_injector.cc.o"
  "CMakeFiles/warped_fault.dir/fault_injector.cc.o.d"
  "libwarped_fault.a"
  "libwarped_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
