# Empty dependencies file for warped_fault.
# This may be replaced when dependencies are built.
