file(REMOVE_RECURSE
  "libwarped_fault.a"
)
