# Empty dependencies file for warped_power.
# This may be replaced when dependencies are built.
