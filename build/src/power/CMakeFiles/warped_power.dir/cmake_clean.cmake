file(REMOVE_RECURSE
  "CMakeFiles/warped_power.dir/power_model.cc.o"
  "CMakeFiles/warped_power.dir/power_model.cc.o.d"
  "libwarped_power.a"
  "libwarped_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
