file(REMOVE_RECURSE
  "libwarped_power.a"
)
