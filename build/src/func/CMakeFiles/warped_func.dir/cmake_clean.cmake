file(REMOVE_RECURSE
  "CMakeFiles/warped_func.dir/executor.cc.o"
  "CMakeFiles/warped_func.dir/executor.cc.o.d"
  "libwarped_func.a"
  "libwarped_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
