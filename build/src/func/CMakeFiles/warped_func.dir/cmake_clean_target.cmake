file(REMOVE_RECURSE
  "libwarped_func.a"
)
