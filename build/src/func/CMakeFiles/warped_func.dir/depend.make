# Empty dependencies file for warped_func.
# This may be replaced when dependencies are built.
