file(REMOVE_RECURSE
  "CMakeFiles/warped_mem.dir/ecc.cc.o"
  "CMakeFiles/warped_mem.dir/ecc.cc.o.d"
  "CMakeFiles/warped_mem.dir/memory.cc.o"
  "CMakeFiles/warped_mem.dir/memory.cc.o.d"
  "CMakeFiles/warped_mem.dir/memory_system.cc.o"
  "CMakeFiles/warped_mem.dir/memory_system.cc.o.d"
  "libwarped_mem.a"
  "libwarped_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
