# Empty dependencies file for warped_mem.
# This may be replaced when dependencies are built.
