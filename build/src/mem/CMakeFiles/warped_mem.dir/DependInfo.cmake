
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/ecc.cc" "src/mem/CMakeFiles/warped_mem.dir/ecc.cc.o" "gcc" "src/mem/CMakeFiles/warped_mem.dir/ecc.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/mem/CMakeFiles/warped_mem.dir/memory.cc.o" "gcc" "src/mem/CMakeFiles/warped_mem.dir/memory.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/warped_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/warped_mem.dir/memory_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/warped_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/warped_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/warped_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
