file(REMOVE_RECURSE
  "libwarped_mem.a"
)
