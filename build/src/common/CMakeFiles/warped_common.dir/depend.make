# Empty dependencies file for warped_common.
# This may be replaced when dependencies are built.
