file(REMOVE_RECURSE
  "libwarped_common.a"
)
