file(REMOVE_RECURSE
  "CMakeFiles/warped_common.dir/logging.cc.o"
  "CMakeFiles/warped_common.dir/logging.cc.o.d"
  "CMakeFiles/warped_common.dir/rng.cc.o"
  "CMakeFiles/warped_common.dir/rng.cc.o.d"
  "libwarped_common.a"
  "libwarped_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
