file(REMOVE_RECURSE
  "libwarped_redundancy.a"
)
