# Empty dependencies file for warped_redundancy.
# This may be replaced when dependencies are built.
