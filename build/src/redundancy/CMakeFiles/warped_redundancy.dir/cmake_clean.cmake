file(REMOVE_RECURSE
  "CMakeFiles/warped_redundancy.dir/scheme.cc.o"
  "CMakeFiles/warped_redundancy.dir/scheme.cc.o.d"
  "libwarped_redundancy.a"
  "libwarped_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
