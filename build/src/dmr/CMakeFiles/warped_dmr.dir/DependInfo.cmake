
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dmr/dmr_config.cc" "src/dmr/CMakeFiles/warped_dmr.dir/dmr_config.cc.o" "gcc" "src/dmr/CMakeFiles/warped_dmr.dir/dmr_config.cc.o.d"
  "/root/repo/src/dmr/dmr_engine.cc" "src/dmr/CMakeFiles/warped_dmr.dir/dmr_engine.cc.o" "gcc" "src/dmr/CMakeFiles/warped_dmr.dir/dmr_engine.cc.o.d"
  "/root/repo/src/dmr/replay_queue.cc" "src/dmr/CMakeFiles/warped_dmr.dir/replay_queue.cc.o" "gcc" "src/dmr/CMakeFiles/warped_dmr.dir/replay_queue.cc.o.d"
  "/root/repo/src/dmr/rfu.cc" "src/dmr/CMakeFiles/warped_dmr.dir/rfu.cc.o" "gcc" "src/dmr/CMakeFiles/warped_dmr.dir/rfu.cc.o.d"
  "/root/repo/src/dmr/thread_mapping.cc" "src/dmr/CMakeFiles/warped_dmr.dir/thread_mapping.cc.o" "gcc" "src/dmr/CMakeFiles/warped_dmr.dir/thread_mapping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/warped_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/warped_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/warped_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/warped_func.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/warped_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/warped_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
