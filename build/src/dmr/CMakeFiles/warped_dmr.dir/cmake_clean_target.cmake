file(REMOVE_RECURSE
  "libwarped_dmr.a"
)
