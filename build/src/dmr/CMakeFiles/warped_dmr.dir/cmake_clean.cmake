file(REMOVE_RECURSE
  "CMakeFiles/warped_dmr.dir/dmr_config.cc.o"
  "CMakeFiles/warped_dmr.dir/dmr_config.cc.o.d"
  "CMakeFiles/warped_dmr.dir/dmr_engine.cc.o"
  "CMakeFiles/warped_dmr.dir/dmr_engine.cc.o.d"
  "CMakeFiles/warped_dmr.dir/replay_queue.cc.o"
  "CMakeFiles/warped_dmr.dir/replay_queue.cc.o.d"
  "CMakeFiles/warped_dmr.dir/rfu.cc.o"
  "CMakeFiles/warped_dmr.dir/rfu.cc.o.d"
  "CMakeFiles/warped_dmr.dir/thread_mapping.cc.o"
  "CMakeFiles/warped_dmr.dir/thread_mapping.cc.o.d"
  "libwarped_dmr.a"
  "libwarped_dmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_dmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
