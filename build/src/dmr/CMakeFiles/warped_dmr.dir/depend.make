# Empty dependencies file for warped_dmr.
# This may be replaced when dependencies are built.
