file(REMOVE_RECURSE
  "CMakeFiles/warped_gpu.dir/gpu.cc.o"
  "CMakeFiles/warped_gpu.dir/gpu.cc.o.d"
  "CMakeFiles/warped_gpu.dir/report.cc.o"
  "CMakeFiles/warped_gpu.dir/report.cc.o.d"
  "libwarped_gpu.a"
  "libwarped_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
