# Empty dependencies file for warped_gpu.
# This may be replaced when dependencies are built.
