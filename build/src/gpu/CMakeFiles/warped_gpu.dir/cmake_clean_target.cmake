file(REMOVE_RECURSE
  "libwarped_gpu.a"
)
