file(REMOVE_RECURSE
  "libwarped_sm.a"
)
