
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sm/scoreboard.cc" "src/sm/CMakeFiles/warped_sm.dir/scoreboard.cc.o" "gcc" "src/sm/CMakeFiles/warped_sm.dir/scoreboard.cc.o.d"
  "/root/repo/src/sm/sm.cc" "src/sm/CMakeFiles/warped_sm.dir/sm.cc.o" "gcc" "src/sm/CMakeFiles/warped_sm.dir/sm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/warped_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/warped_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/warped_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/warped_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/warped_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/warped_func.dir/DependInfo.cmake"
  "/root/repo/build/src/dmr/CMakeFiles/warped_dmr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
