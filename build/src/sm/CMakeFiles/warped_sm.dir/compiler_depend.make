# Empty compiler generated dependencies file for warped_sm.
# This may be replaced when dependencies are built.
