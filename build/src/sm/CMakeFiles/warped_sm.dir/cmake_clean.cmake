file(REMOVE_RECURSE
  "CMakeFiles/warped_sm.dir/scoreboard.cc.o"
  "CMakeFiles/warped_sm.dir/scoreboard.cc.o.d"
  "CMakeFiles/warped_sm.dir/sm.cc.o"
  "CMakeFiles/warped_sm.dir/sm.cc.o.d"
  "libwarped_sm.a"
  "libwarped_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
