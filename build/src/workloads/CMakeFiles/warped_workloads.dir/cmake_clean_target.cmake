file(REMOVE_RECURSE
  "libwarped_workloads.a"
)
