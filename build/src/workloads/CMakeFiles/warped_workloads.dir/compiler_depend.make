# Empty compiler generated dependencies file for warped_workloads.
# This may be replaced when dependencies are built.
