
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bfs.cc" "src/workloads/CMakeFiles/warped_workloads.dir/bfs.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/bfs.cc.o.d"
  "/root/repo/src/workloads/bitonic.cc" "src/workloads/CMakeFiles/warped_workloads.dir/bitonic.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/bitonic.cc.o.d"
  "/root/repo/src/workloads/fft.cc" "src/workloads/CMakeFiles/warped_workloads.dir/fft.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/fft.cc.o.d"
  "/root/repo/src/workloads/laplace.cc" "src/workloads/CMakeFiles/warped_workloads.dir/laplace.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/laplace.cc.o.d"
  "/root/repo/src/workloads/libor.cc" "src/workloads/CMakeFiles/warped_workloads.dir/libor.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/libor.cc.o.d"
  "/root/repo/src/workloads/matrixmul.cc" "src/workloads/CMakeFiles/warped_workloads.dir/matrixmul.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/matrixmul.cc.o.d"
  "/root/repo/src/workloads/mum.cc" "src/workloads/CMakeFiles/warped_workloads.dir/mum.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/mum.cc.o.d"
  "/root/repo/src/workloads/nqueen.cc" "src/workloads/CMakeFiles/warped_workloads.dir/nqueen.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/nqueen.cc.o.d"
  "/root/repo/src/workloads/radix.cc" "src/workloads/CMakeFiles/warped_workloads.dir/radix.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/radix.cc.o.d"
  "/root/repo/src/workloads/scan.cc" "src/workloads/CMakeFiles/warped_workloads.dir/scan.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/scan.cc.o.d"
  "/root/repo/src/workloads/sha.cc" "src/workloads/CMakeFiles/warped_workloads.dir/sha.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/sha.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/warped_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/warped_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/warped_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/warped_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sm/CMakeFiles/warped_sm.dir/DependInfo.cmake"
  "/root/repo/build/src/dmr/CMakeFiles/warped_dmr.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/warped_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/warped_func.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/warped_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/warped_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/warped_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
