file(REMOVE_RECURSE
  "CMakeFiles/warped_workloads.dir/bfs.cc.o"
  "CMakeFiles/warped_workloads.dir/bfs.cc.o.d"
  "CMakeFiles/warped_workloads.dir/bitonic.cc.o"
  "CMakeFiles/warped_workloads.dir/bitonic.cc.o.d"
  "CMakeFiles/warped_workloads.dir/fft.cc.o"
  "CMakeFiles/warped_workloads.dir/fft.cc.o.d"
  "CMakeFiles/warped_workloads.dir/laplace.cc.o"
  "CMakeFiles/warped_workloads.dir/laplace.cc.o.d"
  "CMakeFiles/warped_workloads.dir/libor.cc.o"
  "CMakeFiles/warped_workloads.dir/libor.cc.o.d"
  "CMakeFiles/warped_workloads.dir/matrixmul.cc.o"
  "CMakeFiles/warped_workloads.dir/matrixmul.cc.o.d"
  "CMakeFiles/warped_workloads.dir/mum.cc.o"
  "CMakeFiles/warped_workloads.dir/mum.cc.o.d"
  "CMakeFiles/warped_workloads.dir/nqueen.cc.o"
  "CMakeFiles/warped_workloads.dir/nqueen.cc.o.d"
  "CMakeFiles/warped_workloads.dir/radix.cc.o"
  "CMakeFiles/warped_workloads.dir/radix.cc.o.d"
  "CMakeFiles/warped_workloads.dir/scan.cc.o"
  "CMakeFiles/warped_workloads.dir/scan.cc.o.d"
  "CMakeFiles/warped_workloads.dir/sha.cc.o"
  "CMakeFiles/warped_workloads.dir/sha.cc.o.d"
  "CMakeFiles/warped_workloads.dir/workload.cc.o"
  "CMakeFiles/warped_workloads.dir/workload.cc.o.d"
  "libwarped_workloads.a"
  "libwarped_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
