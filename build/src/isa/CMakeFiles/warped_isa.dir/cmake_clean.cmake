file(REMOVE_RECURSE
  "CMakeFiles/warped_isa.dir/assembler.cc.o"
  "CMakeFiles/warped_isa.dir/assembler.cc.o.d"
  "CMakeFiles/warped_isa.dir/instruction.cc.o"
  "CMakeFiles/warped_isa.dir/instruction.cc.o.d"
  "CMakeFiles/warped_isa.dir/kernel_builder.cc.o"
  "CMakeFiles/warped_isa.dir/kernel_builder.cc.o.d"
  "CMakeFiles/warped_isa.dir/opcode.cc.o"
  "CMakeFiles/warped_isa.dir/opcode.cc.o.d"
  "CMakeFiles/warped_isa.dir/program.cc.o"
  "CMakeFiles/warped_isa.dir/program.cc.o.d"
  "libwarped_isa.a"
  "libwarped_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
