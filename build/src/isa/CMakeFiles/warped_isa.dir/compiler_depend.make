# Empty compiler generated dependencies file for warped_isa.
# This may be replaced when dependencies are built.
