file(REMOVE_RECURSE
  "libwarped_isa.a"
)
