file(REMOVE_RECURSE
  "CMakeFiles/warped_stats.dir/distance.cc.o"
  "CMakeFiles/warped_stats.dir/distance.cc.o.d"
  "CMakeFiles/warped_stats.dir/histogram.cc.o"
  "CMakeFiles/warped_stats.dir/histogram.cc.o.d"
  "CMakeFiles/warped_stats.dir/run_length.cc.o"
  "CMakeFiles/warped_stats.dir/run_length.cc.o.d"
  "libwarped_stats.a"
  "libwarped_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
