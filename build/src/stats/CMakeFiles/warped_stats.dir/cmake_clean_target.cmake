file(REMOVE_RECURSE
  "libwarped_stats.a"
)
