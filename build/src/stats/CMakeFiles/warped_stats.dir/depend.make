# Empty dependencies file for warped_stats.
# This may be replaced when dependencies are built.
