file(REMOVE_RECURSE
  "libwarped_arch.a"
)
