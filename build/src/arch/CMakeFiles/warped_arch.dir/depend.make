# Empty dependencies file for warped_arch.
# This may be replaced when dependencies are built.
