
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/gpu_config.cc" "src/arch/CMakeFiles/warped_arch.dir/gpu_config.cc.o" "gcc" "src/arch/CMakeFiles/warped_arch.dir/gpu_config.cc.o.d"
  "/root/repo/src/arch/simt_stack.cc" "src/arch/CMakeFiles/warped_arch.dir/simt_stack.cc.o" "gcc" "src/arch/CMakeFiles/warped_arch.dir/simt_stack.cc.o.d"
  "/root/repo/src/arch/warp_context.cc" "src/arch/CMakeFiles/warped_arch.dir/warp_context.cc.o" "gcc" "src/arch/CMakeFiles/warped_arch.dir/warp_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/warped_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/warped_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
