file(REMOVE_RECURSE
  "CMakeFiles/warped_arch.dir/gpu_config.cc.o"
  "CMakeFiles/warped_arch.dir/gpu_config.cc.o.d"
  "CMakeFiles/warped_arch.dir/simt_stack.cc.o"
  "CMakeFiles/warped_arch.dir/simt_stack.cc.o.d"
  "CMakeFiles/warped_arch.dir/warp_context.cc.o"
  "CMakeFiles/warped_arch.dir/warp_context.cc.o.d"
  "libwarped_arch.a"
  "libwarped_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warped_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
