# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_simt_stack[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_rfu[1]_include.cmake")
include("/root/repo/build/tests/test_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_replay_queue[1]_include.cmake")
include("/root/repo/build/tests/test_dmr_engine[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_scoreboard[1]_include.cmake")
include("/root/repo/build/tests/test_sm_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_redundancy[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_sched_variants[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_ecc[1]_include.cmake")
include("/root/repo/build/tests/test_workload_profiles[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_shfl_and_contention[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
