file(REMOVE_RECURSE
  "CMakeFiles/test_workload_profiles.dir/test_workload_profiles.cc.o"
  "CMakeFiles/test_workload_profiles.dir/test_workload_profiles.cc.o.d"
  "test_workload_profiles"
  "test_workload_profiles.pdb"
  "test_workload_profiles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
