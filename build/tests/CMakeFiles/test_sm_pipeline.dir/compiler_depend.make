# Empty compiler generated dependencies file for test_sm_pipeline.
# This may be replaced when dependencies are built.
