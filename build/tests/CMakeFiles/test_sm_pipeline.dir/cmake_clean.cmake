file(REMOVE_RECURSE
  "CMakeFiles/test_sm_pipeline.dir/test_sm_pipeline.cc.o"
  "CMakeFiles/test_sm_pipeline.dir/test_sm_pipeline.cc.o.d"
  "test_sm_pipeline"
  "test_sm_pipeline.pdb"
  "test_sm_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
