# Empty compiler generated dependencies file for test_shfl_and_contention.
# This may be replaced when dependencies are built.
