file(REMOVE_RECURSE
  "CMakeFiles/test_shfl_and_contention.dir/test_shfl_and_contention.cc.o"
  "CMakeFiles/test_shfl_and_contention.dir/test_shfl_and_contention.cc.o.d"
  "test_shfl_and_contention"
  "test_shfl_and_contention.pdb"
  "test_shfl_and_contention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shfl_and_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
