# Empty dependencies file for test_rfu.
# This may be replaced when dependencies are built.
