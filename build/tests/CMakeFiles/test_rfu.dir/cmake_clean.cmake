file(REMOVE_RECURSE
  "CMakeFiles/test_rfu.dir/test_rfu.cc.o"
  "CMakeFiles/test_rfu.dir/test_rfu.cc.o.d"
  "test_rfu"
  "test_rfu.pdb"
  "test_rfu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
