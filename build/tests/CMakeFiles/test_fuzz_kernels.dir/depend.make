# Empty dependencies file for test_fuzz_kernels.
# This may be replaced when dependencies are built.
