file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_kernels.dir/test_fuzz_kernels.cc.o"
  "CMakeFiles/test_fuzz_kernels.dir/test_fuzz_kernels.cc.o.d"
  "test_fuzz_kernels"
  "test_fuzz_kernels.pdb"
  "test_fuzz_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
