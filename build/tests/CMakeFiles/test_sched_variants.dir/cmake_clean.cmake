file(REMOVE_RECURSE
  "CMakeFiles/test_sched_variants.dir/test_sched_variants.cc.o"
  "CMakeFiles/test_sched_variants.dir/test_sched_variants.cc.o.d"
  "test_sched_variants"
  "test_sched_variants.pdb"
  "test_sched_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
