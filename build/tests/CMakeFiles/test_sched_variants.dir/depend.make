# Empty dependencies file for test_sched_variants.
# This may be replaced when dependencies are built.
