# Empty dependencies file for test_replay_queue.
# This may be replaced when dependencies are built.
