file(REMOVE_RECURSE
  "CMakeFiles/test_replay_queue.dir/test_replay_queue.cc.o"
  "CMakeFiles/test_replay_queue.dir/test_replay_queue.cc.o.d"
  "test_replay_queue"
  "test_replay_queue.pdb"
  "test_replay_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
