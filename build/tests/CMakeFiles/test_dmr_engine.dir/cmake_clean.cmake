file(REMOVE_RECURSE
  "CMakeFiles/test_dmr_engine.dir/test_dmr_engine.cc.o"
  "CMakeFiles/test_dmr_engine.dir/test_dmr_engine.cc.o.d"
  "test_dmr_engine"
  "test_dmr_engine.pdb"
  "test_dmr_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmr_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
