# Empty compiler generated dependencies file for test_dmr_engine.
# This may be replaced when dependencies are built.
