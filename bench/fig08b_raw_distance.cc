/**
 * @file
 * Figure 8b: RAW dependency distances — for one tracked thread
 * ("warp 1" of SM 0), the cycles between a register write and its
 * next read, printed as a sorted (descending) series like the
 * paper's log-scale plot, plus the headline statistics (minimum
 * >= 8 cycles; a large fraction above 100).
 */

#include <algorithm>

#include "bench/bench_util.hh"

using namespace warped;

int
main()
{
    setVerbose(false);
    bench::printHeader("Figure 8b",
                       "RAW dependency distances of one tracked thread");

    // The paper plots 7 of the benchmarks.
    const std::vector<std::string> names = {
        "MatrixMul", "CUFFT", "BitonicSort", "Nqueen",
        "Laplace",   "SHA",   "RadixSort"};

    std::printf("%-12s %8s %8s %10s %12s %12s\n", "benchmark",
                "samples", "min", "median", ">100 cycles",
                ">1000 cycles");

    for (const auto &name : names) {
        const auto r = bench::runWorkload(name, bench::paperGpu(),
                                          dmr::DmrConfig::off());
        auto v = r.rawDistances;
        std::sort(v.begin(), v.end());
        if (v.empty()) {
            std::printf("%-12s %8s\n", name.c_str(), "none");
            continue;
        }
        const auto above = [&](std::uint64_t d) {
            const auto n = std::count_if(
                v.begin(), v.end(),
                [d](std::uint64_t s) { return s > d; });
            return 100.0 * double(n) / double(v.size());
        };
        std::printf("%-12s %8zu %8llu %10llu %11.1f%% %11.1f%%\n",
                    name.c_str(), v.size(),
                    static_cast<unsigned long long>(v.front()),
                    static_cast<unsigned long long>(v[v.size() / 2]),
                    above(100), above(1000));
    }

    std::printf("\nSorted series (first 20 values, descending), per "
                "the paper's plot:\n");
    for (const auto &name : names) {
        const auto r = bench::runWorkload(name, bench::paperGpu(),
                                          dmr::DmrConfig::off());
        auto v = r.rawDistances;
        std::sort(v.begin(), v.end(), std::greater<>());
        std::printf("%-12s:", name.c_str());
        for (std::size_t i = 0; i < std::min<std::size_t>(20, v.size());
             ++i)
            std::printf(" %llu", static_cast<unsigned long long>(v[i]));
        std::printf("\n");
    }

    std::printf("\nPaper shape check: the minimum RAW distance is the "
                "pipeline depth (>=8 in the\npaper; RF+EXE here), and "
                "a sizable fraction of dependencies sit beyond 100 "
                "cycles,\nso RAW-on-unverified stalls are rare.\n");
    return 0;
}
