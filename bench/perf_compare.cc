/**
 * @file
 * Perf-regression gate: compares a fresh perf_harness metrics JSON
 * against a checked-in baseline (bench/baselines/).
 *
 * Gate policy, tuned for shared CI runners whose wall clocks are
 * noisy but whose *relative* throughput is stable within ~2×:
 *  - throughput gauges (`*.cycles_per_sec`, `*.instr_per_sec`) below
 *    baseline × (1 - tolerance) produce a WARN line;
 *  - only a drop past the hard-fail ratio (default 2×, i.e. current
 *    slower than baseline / 2) makes the tool exit 1;
 *  - deterministic counters (`*.cycles`, `*.instructions`,
 *    `*.launches`) that differ at all produce a WARN — that means
 *    simulator behavior changed and the baseline is stale, not that
 *    the code got slower.
 *
 * Input format: the flat one-object JSON that
 * trace::MetricsRegistry::toJson emits (sorted keys, integers for
 * counters, six-digit floats for gauges). Parsed with a purpose-built
 * scanner rather than a JSON library dependency.
 */

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: perf_compare BASELINE.json CURRENT.json "
        "[--tolerance F] [--hard-fail-ratio F] "
        "[--require-speedup KEY:F]...\n"
        "  --tolerance F        warn when throughput falls below\n"
        "                       baseline*(1-F)  (default 0.25)\n"
        "  --hard-fail-ratio F  exit 1 when baseline/current >= F\n"
        "                       (default 2.0)\n"
        "  --require-speedup KEY:F\n"
        "                       exit 1 unless current[KEY] >=\n"
        "                       baseline[KEY] * F — an improvement\n"
        "                       gate (e.g. "
        "perf.campaign_ref.instr_per_sec:2.0);\n"
        "                       repeatable\n");
    std::exit(code);
}

double
parseDoubleArg(const char *flag, const char *text)
{
    if (!text || !*text)
        usage(2);
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0' || !std::isfinite(v) ||
        v <= 0.0) {
        std::fprintf(stderr, "perf_compare: bad value '%s' for %s\n",
                     text, flag);
        usage(2);
    }
    return v;
}

/**
 * Parse MetricsRegistry::toJson output: one flat object of
 * "key": number pairs. Tolerates arbitrary whitespace; rejects
 * anything structurally different so a truncated or hand-mangled
 * file fails loudly instead of comparing garbage.
 */
bool
parseFlatJson(const std::string &path, std::map<std::string, double> &out)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "perf_compare: cannot read %s\n",
                     path.c_str());
        return false;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string text = ss.str();

    std::size_t i = 0;
    const auto skipWs = [&] {
        while (i < text.size() && std::isspace(
                   static_cast<unsigned char>(text[i])))
            ++i;
    };
    skipWs();
    if (i >= text.size() || text[i] != '{')
        goto malformed;
    ++i;
    skipWs();
    if (i < text.size() && text[i] == '}')
        return true; // empty object
    while (true) {
        skipWs();
        if (i >= text.size() || text[i] != '"')
            goto malformed;
        ++i;
        {
            const std::size_t start = i;
            while (i < text.size() && text[i] != '"')
                ++i;
            if (i >= text.size())
                goto malformed;
            const std::string key = text.substr(start, i - start);
            ++i;
            skipWs();
            if (i >= text.size() || text[i] != ':')
                goto malformed;
            ++i;
            skipWs();
            const char *num = text.c_str() + i;
            char *end = nullptr;
            errno = 0;
            const double v = std::strtod(num, &end);
            if (end == num || errno != 0)
                goto malformed;
            i += static_cast<std::size_t>(end - num);
            out[key] = v;
        }
        skipWs();
        if (i < text.size() && text[i] == ',') {
            ++i;
            continue;
        }
        if (i < text.size() && text[i] == '}')
            return true;
        goto malformed;
    }
malformed:
    std::fprintf(stderr, "perf_compare: %s is not a flat metrics "
                 "JSON object\n", path.c_str());
    return false;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** Deterministic counter whose drift means the baseline is stale. */
bool
isDeterministicKey(const std::string &k)
{
    return endsWith(k, ".cycles") || endsWith(k, ".instructions") ||
           endsWith(k, ".launches") || k == "perf.repeat" ||
           k == "perf.smoke";
}

/** Higher-is-better throughput gauge the regression gate watches. */
bool
isThroughputKey(const std::string &k)
{
    return endsWith(k, ".cycles_per_sec") ||
           endsWith(k, ".instr_per_sec");
}

/** One --require-speedup demand: current[key] >= baseline[key]*factor. */
struct SpeedupReq
{
    std::string key;
    double factor;
};

SpeedupReq
parseSpeedupArg(const char *text)
{
    const char *colon = text ? std::strrchr(text, ':') : nullptr;
    if (!colon || colon == text)
        usage(2);
    SpeedupReq r;
    r.key.assign(text, colon);
    r.factor = parseDoubleArg("--require-speedup", colon + 1);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string base_path, cur_path;
    double tolerance = 0.25;
    double hard_fail_ratio = 2.0;
    std::vector<SpeedupReq> speedups;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
            tolerance = parseDoubleArg("--tolerance", argv[++i]);
        } else if (std::strcmp(argv[i], "--hard-fail-ratio") == 0 &&
                   i + 1 < argc) {
            hard_fail_ratio =
                parseDoubleArg("--hard-fail-ratio", argv[++i]);
        } else if (std::strcmp(argv[i], "--require-speedup") == 0 &&
                   i + 1 < argc) {
            speedups.push_back(parseSpeedupArg(argv[++i]));
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage(0);
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "perf_compare: unknown argument "
                         "'%s'\n", argv[i]);
            usage(2);
        } else if (base_path.empty()) {
            base_path = argv[i];
        } else if (cur_path.empty()) {
            cur_path = argv[i];
        } else {
            usage(2);
        }
    }
    if (base_path.empty() || cur_path.empty())
        usage(2);

    std::map<std::string, double> base, cur;
    if (!parseFlatJson(base_path, base) || !parseFlatJson(cur_path, cur))
        return 2;

    unsigned warns = 0, fails = 0, compared = 0;

    for (const auto &[key, bval] : base) {
        const auto it = cur.find(key);
        if (it == cur.end()) {
            std::printf("WARN  %-40s missing from current run\n",
                        key.c_str());
            ++warns;
            continue;
        }
        const double cval = it->second;
        if (isDeterministicKey(key)) {
            if (bval != cval) {
                std::printf("WARN  %-40s deterministic counter "
                            "drifted: %.0f -> %.0f (baseline is "
                            "stale — regenerate it)\n",
                            key.c_str(), bval, cval);
                ++warns;
            }
            continue;
        }
        if (!isThroughputKey(key))
            continue; // wall_ms / rss: informational only
        ++compared;
        if (bval <= 0.0 || cval <= 0.0)
            continue;
        const double ratio = bval / cval; // >1 means current is slower
        if (ratio >= hard_fail_ratio) {
            std::printf("FAIL  %-40s %.0f -> %.0f  (%.2fx slower, "
                        ">= %.2fx hard-fail threshold)\n",
                        key.c_str(), bval, cval, ratio,
                        hard_fail_ratio);
            ++fails;
        } else if (cval < bval * (1.0 - tolerance)) {
            std::printf("WARN  %-40s %.0f -> %.0f  (%.2fx slower, "
                        "past the %.0f%% tolerance but under the "
                        "%.2fx hard-fail bar)\n",
                        key.c_str(), bval, cval, ratio,
                        tolerance * 100.0, hard_fail_ratio);
            ++warns;
        }
    }
    for (const auto &[key, cval] : cur) {
        (void)cval;
        if (!base.count(key)) {
            std::printf("NOTE  %-40s new metric (not in baseline)\n",
                        key.c_str());
        }
    }

    // Improvement gates: unlike the regression checks above these
    // demand the current run be *faster* than the baseline by a
    // factor — used when a PR's acceptance criterion is a speedup
    // (current vs an old baseline), not parity.
    for (const auto &req : speedups) {
        const auto bit = base.find(req.key);
        const auto cit = cur.find(req.key);
        if (bit == base.end() || cit == cur.end() ||
            bit->second <= 0.0) {
            std::printf("FAIL  %-40s --require-speedup key missing "
                        "or zero in %s\n", req.key.c_str(),
                        bit == base.end() ? "baseline" : "current");
            ++fails;
            continue;
        }
        const double ratio = cit->second / bit->second;
        if (ratio < req.factor) {
            std::printf("FAIL  %-40s %.0f -> %.0f  (%.2fx, below "
                        "the required %.2fx speedup)\n",
                        req.key.c_str(), bit->second, cit->second,
                        ratio, req.factor);
            ++fails;
        } else {
            std::printf("PASS  %-40s %.0f -> %.0f  (%.2fx >= "
                        "required %.2fx speedup)\n",
                        req.key.c_str(), bit->second, cit->second,
                        ratio, req.factor);
        }
    }

    std::printf("perf_compare: %u throughput metrics compared, "
                "%u warnings, %u hard failures\n",
                compared, warns, fails);
    return fails > 0 ? 1 : 0;
}
