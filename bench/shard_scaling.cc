/**
 * @file
 * Shard-scaling harness for the campaign service (ROADMAP item 2's
 * "million-site questions served like production traffic"). Two
 * claims get measured:
 *
 *  1. **Invariance** — the same campaign folded from 1, 2, 4, and 8
 *     shards produces byte-identical report JSON (the ShardAggregator
 *     contract), with per-shard-count wall time so the overhead of
 *     sharding (one golden run per worker) is visible; and
 *
 *  2. **Stratified efficiency** — with `--strata T`, run the same
 *     budget uniform and stratified and compare coverage-CI widths.
 *     Proportional stratification is never worse than uniform
 *     (within noise); the printed `implied budget` is the fraction
 *     of the uniform budget a stratified campaign needs for the
 *     same width, (w_st / w_uni)². How far below 1.0 it lands is a
 *     property of the workload's window heterogeneity — see the
 *     measured table and the honesty discussion in EXPERIMENTS.md.
 *
 *     shard_scaling [--workload N] [--size S] [--sites N]
 *                   [--strata T] [--windows W] [--jobs J]
 */

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "fault/campaign_engine.hh"
#include "fault/shard.hh"
#include "stats/accumulator.hh"

using namespace warped;

namespace {

struct Args
{
    std::string workload = "SCAN";
    unsigned size = 2;
    std::uint64_t sites = 2000;
    unsigned strata = 64;
    unsigned windows = 0;
    unsigned jobs = 1;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i + 1 < argc; i += 2) {
        const std::string f = argv[i];
        const char *v = argv[i + 1];
        if (f == "--workload")
            a.workload = v;
        else if (f == "--size")
            a.size = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (f == "--sites")
            a.sites = std::strtoull(v, nullptr, 10);
        else if (f == "--strata")
            a.strata = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (f == "--windows")
            a.windows =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (f == "--jobs")
            a.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else
            warped_panic("shard_scaling: unknown flag ", f);
    }
    return a;
}

fault::EngineConfig
baseCfg(const Args &a)
{
    fault::EngineConfig ec;
    ec.workload = a.workload;
    ec.gpu = arch::GpuConfig::testDefault();
    ec.sites = a.sites;
    ec.seed = 42;
    ec.jobs = a.jobs;
    ec.space.cycleWindows = a.windows;
    return ec;
}

fault::WorkloadFactory
factoryFor(const Args &a)
{
    return [a] {
        return workloads::makeByNameSized(a.workload, a.size);
    };
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const auto a = parseArgs(argc, argv);
    bench::printHeader(
        "shard scaling (campaign service)",
        "Sharded fold invariance + stratified sampling efficiency");

    const auto ec = baseCfg(a);
    std::printf("\ncampaign: %s (size %u), %llu sites, seed %llu\n\n",
                a.workload.c_str(), a.size,
                static_cast<unsigned long long>(a.sites),
                static_cast<unsigned long long>(ec.seed));

    // --- 1. shard-count invariance -------------------------------
    std::printf("%-8s %10s %12s  %s\n", "shards", "runs", "wall [s]",
                "report vs 1-shard");
    std::string reference;
    for (const std::uint64_t shards : {1, 2, 4, 8}) {
        const auto t0 = std::chrono::steady_clock::now();
        fault::CampaignEngine orch(factoryFor(a), ec);
        orch.prepare();
        const auto plans =
            fault::planShards(orch.plannedSites(), shards);
        fault::ShardAggregator agg(orch.skeleton(), orch.signature(),
                                   orch.plannedSites(), shards);
        for (const auto &p : plans)
            agg.fold(fault::runShardInProcess(factoryFor(a), ec, p));
        const auto json = agg.report().toJson();
        const double dt = secondsSince(t0);
        if (reference.empty())
            reference = json;
        std::printf("%-8llu %10llu %12.2f  %s\n",
                    static_cast<unsigned long long>(shards),
                    static_cast<unsigned long long>(
                        orch.plannedSites()),
                    dt,
                    json == reference ? "byte-identical" : "DIFFERS");
        if (json != reference)
            return 1;
    }

    // --- 2. stratified efficiency --------------------------------
    // Same budget both ways: pooled uniform Wilson width vs the
    // stratified estimator's width. Proportional stratification can
    // only remove the between-strata variance component, so the
    // squared width ratio is the budget fraction a stratified
    // campaign needs for the uniform campaign's precision.
    const auto uniform =
        fault::CampaignEngine(factoryFor(a), ec).run();
    const auto uci = uniform.overall.coverageCi();
    const double uwidth = uci.hi - uci.lo;

    auto sec = ec;
    sec.strataWindows = a.strata;
    const auto strat =
        fault::CampaignEngine(factoryFor(a), sec).run();

    std::vector<std::string> labels;
    std::vector<std::uint64_t> sizes;
    for (const auto &[label, sz] : strat.stratumSizes) {
        labels.push_back(label);
        sizes.push_back(sz);
    }
    stats::StratifiedEstimator est(sizes);
    for (std::size_t h = 0; h < labels.size(); ++h) {
        const auto it = strat.byStratum.find(labels[h]);
        if (it == strat.byStratum.end())
            continue;
        est.addCounts(h, fault::CampaignReport::caught(it->second),
                      it->second.total());
    }
    const auto sci = est.interval();
    const double swidth = sci.hi - sci.lo;

    std::printf("\n%-34s %8s %10s %10s\n", "sampling", "runs",
                "coverage", "CI width");
    std::printf("%-34s %8llu %9.2f%% %10.4f\n",
                "uniform (pooled Wilson)",
                static_cast<unsigned long long>(uniform.sampled),
                100 * uniform.overall.coverage(), uwidth);
    std::printf("%-34s %8llu %9.2f%% %10.4f\n",
                ("stratified (" + std::to_string(a.strata) +
                 " window buckets)")
                    .c_str(),
                static_cast<unsigned long long>(strat.sampled),
                100 * est.estimate(), swidth);
    const double ratio = uwidth > 0 ? swidth / uwidth : 1.0;
    std::printf("\nwidth ratio %.2f at equal budget; implied budget "
                "for uniform precision: %.0f%% of the runs\n",
                ratio, 100.0 * ratio * ratio);
    return 0;
}
