/**
 * @file
 * Figure 8a: instruction-type switching distances — the average (and
 * max) number of consecutively issued instructions of the same unit
 * type before the issue stream switches. The paper reads off this
 * figure that a ~6-entry ReplayQ suffices on average and 20 entries
 * bound the worst case; this harness prints the same per-type series.
 */

#include <algorithm>

#include "bench/bench_util.hh"

using namespace warped;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::printHeader(
        "Figure 8a",
        "Average same-type issue run length (switching distance)");

    std::printf("%-12s %9s %9s %9s %9s\n", "benchmark", "SP", "SFU",
                "LD/ST", "max(all)");

    const auto results = bench::sweepWorkloads(
        [](const std::string &name) {
            return bench::runWorkload(name, bench::paperGpu(),
                                      dmr::DmrConfig::off());
        },
        bench::parseJobs(argc, argv));

    double worst_mean = 0.0;
    const auto &names = workloads::allNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &name = names[i];
        const auto &r = results[i];
        std::uint64_t mx = 0;
        for (unsigned t = 0; t < isa::kNumUnitTypes; ++t)
            mx = std::max(mx, r.maxTypeRun[t]);
        std::printf("%-12s %9.2f %9.2f %9.2f %9llu\n", name.c_str(),
                    r.meanTypeRun[0], r.meanTypeRun[1],
                    r.meanTypeRun[2],
                    static_cast<unsigned long long>(mx));
        for (unsigned t = 0; t < isa::kNumUnitTypes; ++t)
            worst_mean = std::max(worst_mean, r.meanTypeRun[t]);
    }

    std::printf("\nPaper shape check: most means below ~6 (the "
                "average ReplayQ size the paper\npicks); burst-heavy "
                "outliers (SHA/MatrixMul class) reach the teens. "
                "Worst mean here: %.1f\n",
                worst_mean);
    return 0;
}
