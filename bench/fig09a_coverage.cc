/**
 * @file
 * Figure 9a: error coverage with respect to the SIMT-cluster
 * organization and thread-to-core mapping. Three machines per
 * workload, as in the paper:
 *   (1) 4-lane clusters, default in-order mapping  (avg 89.60 %)
 *   (2) 8-lane clusters, default in-order mapping  (avg 91.91 %)
 *   (3) 4-lane clusters, enhanced cross mapping    (avg 96.43 %)
 */

#include "bench/bench_util.hh"

using namespace warped;

namespace {

struct Row
{
    double c4 = 0.0, c8 = 0.0, cx = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::printHeader("Figure 9a",
                       "Error coverage vs cluster size and mapping");

    std::printf("%-12s %14s %14s %14s\n", "benchmark", "4-lane cluster",
                "8-lane cluster", "cross mapping");

    const auto rows = bench::sweepWorkloads(
        [](const std::string &name) {
            auto cfg4 = bench::paperGpu();
            auto cfg8 = cfg4;
            cfg8.lanesPerCluster = 8;

            const auto r4 = bench::runWorkload(
                name, cfg4, dmr::DmrConfig::baselineMapping());
            const auto r8 = bench::runWorkload(
                name, cfg8, dmr::DmrConfig::baselineMapping());
            const auto rx = bench::runWorkload(
                name, cfg4, dmr::DmrConfig::paperDefault());
            return Row{100 * r4.coverage(), 100 * r8.coverage(),
                       100 * rx.coverage()};
        },
        bench::parseJobs(argc, argv));

    std::vector<double> c4, c8, cx;
    const auto &names = workloads::allNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        c4.push_back(rows[i].c4);
        c8.push_back(rows[i].c8);
        cx.push_back(rows[i].cx);
        std::printf("%-12s %13.2f%% %13.2f%% %13.2f%%\n",
                    names[i].c_str(), c4.back(), c8.back(), cx.back());
    }

    std::printf("%-12s %13.2f%% %13.2f%% %13.2f%%\n", "AVERAGE",
                bench::meanOf(c4), bench::meanOf(c8),
                bench::meanOf(cx));
    std::printf("\nPaper:        %13s %14s %14s\n", "89.60%", "91.91%",
                "96.43%");
    std::printf("\nPaper shape check: cross mapping > 8-lane cluster > "
                "4-lane baseline, with\ncross mapping adding roughly "
                "+%.1f points over the baseline (paper: +6.8, of\n"
                "which +9.6%% more detection opportunity, Sec 4.2).\n",
                bench::meanOf(cx) - bench::meanOf(c4));
    return 0;
}
