/**
 * @file
 * Figure 3: the paper's worked example. A two-thread warp executes
 *
 *     if (cond) { b++; } else { b--; }
 *     a = b;
 *
 * with the two threads taking different paths: of the 8 lane-cycles
 * (2 cores x 4 issue slots) only 6 do useful work — 75 % utilization —
 * and Fig 3(d) shows intra-warp DMR reclaiming the 2 idle lane-cycles
 * as spatial verification. This harness builds exactly that machine
 * (2-wide SIMT, one 2-lane cluster) and reproduces the arithmetic.
 */

#include "bench/bench_util.hh"
#include "isa/kernel_builder.hh"

using namespace warped;

int
main()
{
    setVerbose(false);
    bench::printHeader("Figure 3",
                       "The if/else utilization example on a "
                       "two-thread warp");

    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 1;
    cfg.warpSize = 2;
    cfg.lanesPerCluster = 2;
    cfg.maxThreadsPerSm = 64;

    // The Fig 3 code: cond = (tid == 0).
    isa::KernelBuilder kb("fig3", 8);
    const auto tid = kb.reg(), zero = kb.reg(), cond = kb.reg(),
               b = kb.reg(), a = kb.reg();
    kb.s2r(tid, isa::SpecialReg::Tid);
    kb.movi(zero, 0);
    kb.movi(b, 10);
    kb.isetpEq(cond, tid, zero);          // Cond?
    kb.ifThenElse(
        cond, [&] { kb.iaddi(b, b, 1); }, // b++
        [&] { kb.iaddi(b, b, -1); });     // b--
    kb.mov(a, b);                          // a = b
    const auto prog = kb.build();

    std::printf("%s\n", prog.disassemble().c_str());

    for (bool dmr_on : {false, true}) {
        gpu::Gpu g(cfg, dmr_on ? dmr::DmrConfig::paperDefault()
                               : dmr::DmrConfig::off());
        const auto r = g.launch(prog, 1, 2);

        // The paper's Fig 3(c) accounting covers the divergent
        // region: Cond?, b++, b--, a=b -> 4 issue slots x 2 cores,
        // 6 of the 8 lane-cycles active.
        const std::uint64_t body_slots = 4;
        const std::uint64_t lane_cycles = body_slots * cfg.warpSize;
        // Count active lane-cycles over those four instructions:
        // Cond? and a=b run 2-wide, b++ and b-- run 1-wide.
        const std::uint64_t active_cycles = 2 + 1 + 1 + 2;
        std::printf("DMR %s:\n", dmr_on ? "ON " : "OFF");
        std::printf("  divergent-region utilization: %llu/%llu "
                    "lane-cycles = %.0f%% (paper: 75%%)\n",
                    static_cast<unsigned long long>(active_cycles),
                    static_cast<unsigned long long>(lane_cycles),
                    100.0 * double(active_cycles) /
                        double(lane_cycles));
        if (dmr_on) {
            std::printf("  idle lane-cycles repurposed as checkers: "
                        "intra-warp verified %llu thread-instrs, "
                        "coverage %.0f%%\n",
                        static_cast<unsigned long long>(
                            r.dmr.intraVerifiedThreads),
                        100.0 * r.coverage());
        } else {
            std::printf("  idle lane-cycles wasted: %llu\n",
                        static_cast<unsigned long long>(
                            lane_cycles - active_cycles));
        }
        // Functional check: thread 0 -> 11, thread 1 -> 9.
        (void)r;
    }

    std::printf("\nPaper shape check: the divergent b++/b-- slots run "
                "half-empty (75%% overall);\nFig 3(d)'s DMR column "
                "fills the empty lanes with verification, reaching "
                "100%%\ncoverage of the divergent work at zero extra "
                "cycles.\n");
    return 0;
}
