/**
 * @file
 * Ablation study: decompose Warped-DMR into its ingredients
 * (intra-warp only / inter-warp only / both; mapping; ReplayQ depth
 * saturation) and sweep the sampling-DMR extension's duty cycle —
 * the design-choice evidence DESIGN.md calls out.
 */

#include <algorithm>

#include "bench/bench_util.hh"

using namespace warped;

namespace {

struct Mode
{
    const char *name;
    dmr::DmrConfig cfg;
};

void
runGrid(unsigned jobs)
{
    std::vector<Mode> modes;
    {
        auto c = dmr::DmrConfig::paperDefault();
        c.interWarp = false;
        c.replayQSize = 0;
        modes.push_back({"intra only", c});
    }
    {
        auto c = dmr::DmrConfig::paperDefault();
        c.intraWarp = false;
        modes.push_back({"inter only", c});
    }
    modes.push_back({"both (paper)", dmr::DmrConfig::paperDefault()});

    std::printf("%-14s", "mode");
    const std::vector<std::string> names = {"BFS", "BitonicSort",
                                            "MatrixMul", "CUFFT"};
    for (const auto &n : names)
        std::printf(" %11s", n.c_str());
    std::printf("   (coverage %% / overhead x)\n");

    // Every (mode, workload) cell plus the baselines is an
    // independent simulation; fan them all out and print in order.
    struct Cell
    {
        double coverage = 0.0;
        Cycle cycles = 0;
    };
    std::vector<std::optional<gpu::LaunchResult>> bases(names.size());
    std::vector<Cell> cells(modes.size() * names.size());
    sim::RunPool pool(jobs);
    pool.parallelFor(bases.size() + cells.size(), [&](std::size_t i) {
        if (i < bases.size()) {
            bases[i].emplace(bench::runWorkload(
                names[i], bench::paperGpu(), dmr::DmrConfig::off()));
            return;
        }
        const std::size_t c = i - bases.size();
        const auto r = bench::runWorkload(names[c % names.size()],
                                          bench::paperGpu(),
                                          modes[c / names.size()].cfg);
        cells[c] = Cell{r.coverage(), r.cycles};
    });

    for (std::size_t m = 0; m < modes.size(); ++m) {
        std::printf("%-14s", modes[m].name);
        for (std::size_t i = 0; i < names.size(); ++i) {
            const auto &cell = cells[m * names.size() + i];
            std::printf("  %4.1f/%5.2f", 100 * cell.coverage,
                        double(cell.cycles) /
                            double(bases[i]->cycles));
        }
        std::printf("\n");
    }
    std::printf(
        "\nIntra-warp alone covers only divergent code (free); "
        "inter-warp alone misses\npartial warps; the paper's design "
        "needs both, which the grid shows.\n\n");
}

void
runQueueSaturation()
{
    std::printf("ReplayQ depth saturation (MatrixMul, normalized "
                "cycles):\n  q:    ");
    const unsigned sizes[] = {0, 1, 2, 4, 6, 8, 10, 14, 20};
    const auto base = bench::runWorkload("MatrixMul", bench::paperGpu(),
                                         dmr::DmrConfig::off());
    for (unsigned q : sizes)
        std::printf(" %6u", q);
    std::printf("\n  cost: ");
    for (unsigned q : sizes) {
        auto d = dmr::DmrConfig::paperDefault();
        d.replayQSize = q;
        const auto r =
            bench::runWorkload("MatrixMul", bench::paperGpu(), d);
        std::printf(" %6.3f", double(r.cycles) / double(base.cycles));
    }
    std::printf("\n\nThe knee sits near the Fig-8a mean same-type run "
                "length, as §4.3.1 argues.\n\n");
}

void
runSamplingCurve()
{
    std::printf("Sampling-DMR extension (SHA): duty cycle vs coverage "
                "vs overhead\n");
    std::printf("  %-10s %10s %10s\n", "duty", "coverage", "overhead");
    const auto base = bench::runWorkload("SHA", bench::paperGpu(),
                                         dmr::DmrConfig::off());
    const std::pair<Cycle, Cycle> duties[] = {
        {0, 0}, {1000, 750}, {1000, 500}, {1000, 250}, {1000, 100}};
    for (auto [epoch, active] : duties) {
        auto d = dmr::DmrConfig::paperDefault();
        d.samplingEpoch = epoch;
        d.samplingActive = active;
        const auto r = bench::runWorkload("SHA", bench::paperGpu(), d);
        const double duty =
            epoch == 0 ? 1.0 : double(active) / double(epoch);
        std::printf("  %9.0f%% %9.1f%% %10.3f\n", 100 * duty,
                    100 * r.coverage(),
                    double(r.cycles) / double(base.cycles));
    }
    std::printf("\nDuty-cycled protection trades transient coverage "
                "for overhead (permanent\nfaults are still caught "
                "eventually) — the Sampling+DMR idea the paper cites "
                "as [15].\n");
}

void
runSchedulerAblation()
{
    std::printf("\nScheduler-count ablation (paper Sec 2.2: more "
                "schedulers = less heterogeneous\nidleness for "
                "inter-warp DMR):\n");
    std::printf("  %-12s %12s %12s %10s\n", "benchmark",
                "1-sched ovh", "2-sched ovh", "2s speedup");
    for (const std::string name : {"MatrixMul", "SHA", "SCAN"}) {
        double ovh[2], basecy[2];
        for (unsigned s = 1; s <= 2; ++s) {
            auto cfg = bench::paperGpu();
            cfg.numSchedulers = s;
            const auto base =
                bench::runWorkload(name, cfg, dmr::DmrConfig::off());
            const auto prot = bench::runWorkload(
                name, cfg, dmr::DmrConfig::paperDefault());
            ovh[s - 1] = double(prot.cycles) / double(base.cycles);
            basecy[s - 1] = double(base.cycles);
        }
        std::printf("  %-12s %12.3f %12.3f %9.2fx\n", name.c_str(),
                    ovh[0], ovh[1], basecy[0] / basecy[1]);
    }
    std::printf("\nA second scheduler speeds the baseline up but "
                "leaves fewer idle issue slots,\nso Warped-DMR's "
                "relative cost grows — quantifying the paper's "
                "single-scheduler\nbaseline choice.\n");
}

void
runWarpWidthSweep()
{
    std::printf("\nWarp-width sweep (BFS; the intro's scaling "
                "argument — wider SIMT bundles\ndiverge more, so "
                "spatial DMR opportunity grows):\n");
    std::printf("  %-8s %12s %12s %12s\n", "width", "full slots",
                "coverage", "overhead");
    for (unsigned ws : {16u, 32u, 64u}) {
        auto cfg = bench::paperGpu();
        cfg.warpSize = ws;
        const auto base =
            bench::runWorkload("BFS", cfg, dmr::DmrConfig::off());
        const auto prot = bench::runWorkload(
            "BFS", cfg, dmr::DmrConfig::paperDefault());
        std::printf("  %-8u %11.1f%% %11.2f%% %12.3f\n", ws,
                    100 * base.activeHist.rangeFraction(ws, ws),
                    100 * prot.coverage(),
                    double(prot.cycles) / double(base.cycles));
    }
}

void
runGatingGranularity()
{
    std::printf("\nPower-gating granularity (Sec 3.4): mean idle-gap "
                "length at SM vs SP\ngranularity (cycles).\n");
    std::printf("  %-12s %14s %14s\n", "benchmark", "SM idle gap",
                "SP idle gap");
    for (const std::string name : {"BFS", "BitonicSort", "SHA"}) {
        auto cfg = bench::paperGpu();
        cfg.trackIdleGaps = true;
        auto w = workloads::makeByName(name);
        gpu::Gpu g(cfg, dmr::DmrConfig::off());
        const auto r = workloads::runVerified(*w, g);
        std::printf("  %-12s %14.1f %14.1f\n", name.c_str(),
                    r.meanSmIdleGap, r.meanLaneIdleGap);
    }
    std::printf(
        "\nReading per Sec 3.4: on fully-utilized kernels (SHA) SP "
        "gaps are a few cycles —\nbelow any realistic gating "
        "break-even — so gating SPs buys nothing. Where SP\ngaps are "
        "long (BFS), they belong to divergence-idled lanes, exactly "
        "the slack\nintra-warp DMR converts into error coverage "
        "instead of leakage savings.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const unsigned jobs = bench::parseJobs(argc, argv);
    bench::printHeader("Ablation",
                       "Warped-DMR decomposition, queue saturation, "
                       "sampling and scheduler extensions");
    runGrid(jobs);
    runQueueSaturation();
    runSamplingCurve();
    runSchedulerAblation();
    runWarpWidthSweep();
    runGatingGranularity();
    return 0;
}
