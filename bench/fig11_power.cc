/**
 * @file
 * Figure 11: normalized power and energy consumption of Warped-DMR
 * against the unprotected baseline, using the Hong&Kim-style
 * analytical model (§5.4). Paper averages: power 1.11x, energy 1.31x.
 */

#include "bench/bench_util.hh"
#include "power/power_model.hh"

using namespace warped;

int
main()
{
    setVerbose(false);
    bench::printHeader("Figure 11",
                       "Normalized power and energy (Warped-DMR / "
                       "baseline)");

    power::PowerModel model(bench::paperGpu());

    std::printf("%-12s %10s %10s %14s %14s\n", "benchmark", "power",
                "energy", "base power(W)", "dmr power(W)");

    std::vector<double> powers, energies;
    for (const auto &name : workloads::allNames()) {
        const auto base = bench::runWorkload(name, bench::paperGpu(),
                                             dmr::DmrConfig::off());
        const auto prot = bench::runWorkload(
            name, bench::paperGpu(), dmr::DmrConfig::paperDefault());

        const double p0 = model.estimate(base).total();
        const double p1 = model.estimate(prot).total();
        const double e0 = model.energyMj(base);
        const double e1 = model.energyMj(prot);
        powers.push_back(p1 / p0);
        energies.push_back(e1 / e0);
        std::printf("%-12s %10.3f %10.3f %14.1f %14.1f\n",
                    name.c_str(), p1 / p0, e1 / e0, p0, p1);
    }

    std::printf("%-12s %10.3f %10.3f\n", "AVERAGE",
                bench::meanOf(powers), bench::meanOf(energies));
    std::printf("%-12s %10.2f %10.2f\n", "Paper", 1.11, 1.31);

    std::printf("\nPaper shape check: power rises modestly (redundant "
                "executions fill otherwise\nidle units), energy rises "
                "more (power x longer runtime); the workloads with\n"
                "the largest timing overhead pay the most energy "
                "(paper: Laplace up to +60%%).\n");
    return 0;
}
