/**
 * @file
 * Figure 11: normalized power and energy consumption of Warped-DMR
 * against the unprotected baseline, using the Hong&Kim-style
 * analytical model (§5.4). Paper averages: power 1.11x, energy 1.31x.
 */

#include "bench/bench_util.hh"
#include "power/power_model.hh"

using namespace warped;

namespace {

struct Row
{
    double powerRatio = 0.0, energyRatio = 0.0;
    double basePower = 0.0, dmrPower = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::printHeader("Figure 11",
                       "Normalized power and energy (Warped-DMR / "
                       "baseline)");

    std::printf("%-12s %10s %10s %14s %14s\n", "benchmark", "power",
                "energy", "base power(W)", "dmr power(W)");

    const auto rows = bench::sweepWorkloads(
        [](const std::string &name) {
            power::PowerModel model(bench::paperGpu());
            const auto base = bench::runWorkload(
                name, bench::paperGpu(), dmr::DmrConfig::off());
            const auto prot = bench::runWorkload(
                name, bench::paperGpu(),
                dmr::DmrConfig::paperDefault());

            const double p0 = model.estimate(base).total();
            const double p1 = model.estimate(prot).total();
            const double e0 = model.energyMj(base);
            const double e1 = model.energyMj(prot);
            return Row{p1 / p0, e1 / e0, p0, p1};
        },
        bench::parseJobs(argc, argv));

    std::vector<double> powers, energies;
    const auto &names = workloads::allNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        powers.push_back(rows[i].powerRatio);
        energies.push_back(rows[i].energyRatio);
        std::printf("%-12s %10.3f %10.3f %14.1f %14.1f\n",
                    names[i].c_str(), rows[i].powerRatio,
                    rows[i].energyRatio, rows[i].basePower,
                    rows[i].dmrPower);
    }

    std::printf("%-12s %10.3f %10.3f\n", "AVERAGE",
                bench::meanOf(powers), bench::meanOf(energies));
    std::printf("%-12s %10.2f %10.2f\n", "Paper", 1.11, 1.31);

    std::printf("\nPaper shape check: power rises modestly (redundant "
                "executions fill otherwise\nidle units), energy rises "
                "more (power x longer runtime); the workloads with\n"
                "the largest timing overhead pay the most energy "
                "(paper: Laplace up to +60%%).\n");
    return 0;
}
