/**
 * @file
 * Simulator-throughput microbenchmark: runs a pinned set of reference
 * configurations (MatrixMul / BFS / Scan on 4 SMs, fixed seeds, DMR
 * on and off, plus the fault-campaign reference mix) single-threaded
 * and reports throughput through a trace::MetricsRegistry.
 *
 * Output contract (relied on by perf_compare and the perf_smoke
 * ctest):
 *  - counters (`perf.<config>.cycles`, `.instructions`, `.launches`)
 *    depend only on the simulation seeds and are byte-identical
 *    across runs and machines — any drift means simulator behavior
 *    changed, not just speed;
 *  - gauges (`perf.<config>.wall_ms`, `.cycles_per_sec`,
 *    `.instr_per_sec`, `perf.peak_rss_mb`) carry wall-clock-derived
 *    values and differ run to run.
 *
 * `--self-check` runs the suite twice and fails unless the
 * deterministic half of the registry is identical — the
 * determinism gate behind the perf_smoke ctest target.
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "arch/gpu_config.hh"
#include "common/logging.hh"
#include "dmr/dmr_config.hh"
#include "gpu/gpu.hh"
#include "protection/scheme_registry.hh"
#include "recovery/recovery_config.hh"
#include "trace/metrics.hh"
#include "workloads/workload.hh"

using namespace warped;

namespace {

using WorkloadFactory =
    std::function<std::unique_ptr<workloads::Workload>()>;

/** One pinned measurement configuration. */
struct PerfConfig
{
    const char *name;
    std::vector<WorkloadFactory> factories; ///< run back to back
    dmr::DmrConfig dmr;
    recovery::RecoveryConfig recovery; ///< default: disabled
    protection::SchemeConfig scheme;   ///< default: Warped-DMR
    /** Memory-hierarchy knobs; the flat/no-ECC default keeps every
     *  pre-existing config on the exact pre-banked machine. */
    arch::MemModel memModel = arch::MemModel::Flat;
    arch::EccKind ecc = arch::EccKind::None;
};

/** The config's machine: the reference GPU plus its memory knobs. */
arch::GpuConfig
configGpu(const arch::GpuConfig &base, const PerfConfig &cfg)
{
    auto gpu = base;
    gpu.memModel = cfg.memModel;
    gpu.eccKind = cfg.ecc;
    return gpu;
}

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: perf_harness [--out FILE] [--repeat N] [--smoke] "
        "[--self-check] [--recovery-noop-check]\n"
        "  --out FILE    write the metrics JSON here "
        "(default BENCH_PR4.json)\n"
        "  --repeat N    measure N back-to-back repetitions per "
        "config (default 1)\n"
        "  --smoke       tiny workload instances (CI smoke variant)\n"
        "  --self-check  run the suite twice; exit 1 unless the\n"
        "                deterministic counters match exactly\n"
        "  --recovery-noop-check\n"
        "                skip measurement; exit 1 unless runs with\n"
        "                recovery disabled are metric-identical to\n"
        "                plain baseline runs (byte-identity gate)\n");
    std::exit(code);
}

/** Strict numeric flag parse: full-string, in-range, or usage+exit 2. */
unsigned
parseUnsignedArg(const char *flag, const char *text)
{
    if (!text || !*text)
        usage(2);
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || v > 0xFFFFFFFFul) {
        std::fprintf(stderr, "perf_harness: bad value '%s' for %s\n",
                     text, flag);
        usage(2);
    }
    return static_cast<unsigned>(v);
}

/** The campaign machine: 4 SMs of the short-latency test GPU. */
arch::GpuConfig
referenceGpu()
{
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 4;
    return cfg;
}

std::vector<PerfConfig>
buildConfigs(bool smoke)
{
    // Workload sizes match bench/fault_campaign.cc's reference
    // targets; the smoke variant shrinks them so CI finishes in
    // seconds while exercising the same code paths.
    const unsigned mm = smoke ? 32 : 64;
    const unsigned blocks = smoke ? 2 : 4;

    const WorkloadFactory matmul = [mm] {
        return workloads::makeMatrixMul(mm);
    };
    const WorkloadFactory bfs = [blocks] {
        return workloads::makeBfs(blocks);
    };
    const WorkloadFactory scan = [blocks] {
        return workloads::makeScan(blocks);
    };
    const WorkloadFactory sha = [blocks] {
        return workloads::makeSha(blocks);
    };
    const WorkloadFactory fft = [blocks] {
        return workloads::makeFft(blocks);
    };

    const auto on = dmr::DmrConfig::paperDefault();
    const auto off = dmr::DmrConfig::off();

    std::vector<PerfConfig> configs;
    configs.push_back({"matrixmul_dmr", {matmul}, on, {}});
    configs.push_back({"matrixmul_nodmr", {matmul}, off, {}});
    // Rollback-replay enabled on the fault-free path: measures the
    // pure checkpointing overhead (delta capture + BAR/EXIT drain
    // stalls) the recovery engine adds on top of DMR.
    configs.push_back({"matrixmul_dmr_recovery",
                       {matmul},
                       on,
                       recovery::RecoveryConfig::paperDefault()});
    configs.push_back({"bfs_dmr", {bfs}, on, {}});
    configs.push_back({"bfs_nodmr", {bfs}, off, {}});
    configs.push_back({"scan_dmr", {scan}, on, {}});
    configs.push_back({"scan_nodmr", {scan}, off, {}});
    // The fault-campaign reference mix: every injection run in
    // bench/fault_campaign simulates one of these five golden
    // workloads under paper-default DMR, so their back-to-back
    // throughput tracks campaign wall time directly.
    configs.push_back(
        {"campaign_ref", {bfs, scan, matmul, sha, fft}, on, {}});
    // Non-DMR protection backends through the seam: R-Thread is the
    // cheapest software scheme with per-issue work, Replay-Compare
    // the heaviest (full end-of-kernel replay), so together they
    // bracket the per-issue cost of the ProtectionScheme dispatch.
    configs.push_back({"matrixmul_rthread",
                       {matmul},
                       off,
                       {},
                       {protection::SchemeId::RThread}});
    configs.push_back({"matrixmul_replay_compare",
                       {matmul},
                       off,
                       {},
                       {protection::SchemeId::ReplayCompare}});
    // The ECC-protected banked memory hierarchy: same MatrixMul
    // instance on the banked DRAM model with SECDED in the config, so
    // the open-row bookkeeping and the [[unlikely]] fault-plane tests
    // on the access paths are both priced. Fault-free runs never arm
    // a plane, so this isolates the model's overhead, not the codec's.
    configs.push_back({"matrixmul_ecc_banked",
                       {matmul},
                       on,
                       {},
                       {},
                       arch::MemModel::Banked,
                       arch::EccKind::Secded});
    return configs;
}

double
peakRssMb()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return double(ru.ru_maxrss) / 1024.0; // Linux: KiB
}

/** Run every config @p repeat times and fill @p m. */
void
measure(const std::vector<PerfConfig> &configs, unsigned repeat,
        trace::MetricsRegistry &m)
{
    using Clock = std::chrono::steady_clock;
    const auto gpu_cfg = referenceGpu();

    for (const auto &cfg : configs) {
        std::uint64_t cycles = 0, instrs = 0, launches = 0;
        const auto t0 = Clock::now();
        for (unsigned rep = 0; rep < repeat; ++rep) {
            for (const auto &factory : cfg.factories) {
                auto w = factory();
                gpu::Gpu g(configGpu(gpu_cfg, cfg), cfg.dmr,
                           /*seed=*/1, /*hook=*/nullptr, cfg.recovery,
                           cfg.scheme);
                const auto r = workloads::runVerified(*w, g);
                if (r.hung)
                    warped_fatal("perf config ", cfg.name,
                                 " hung — measurement void");
                cycles += r.cycles;
                instrs += r.issuedWarpInstrs;
                ++launches;
            }
        }
        const std::chrono::duration<double> dt = Clock::now() - t0;
        const std::string p = std::string("perf.") + cfg.name;

        m.counter(p + ".cycles") = cycles;
        m.counter(p + ".instructions") = instrs;
        m.counter(p + ".launches") = launches;
        m.gauge(p + ".wall_ms") = dt.count() * 1e3;
        m.gauge(p + ".cycles_per_sec") =
            dt.count() > 0 ? double(cycles) / dt.count() : 0.0;
        m.gauge(p + ".instr_per_sec") =
            dt.count() > 0 ? double(instrs) / dt.count() : 0.0;

        std::printf("  %-18s %10.1f ms  %12.0f cyc/s  %12.0f "
                    "instr/s\n",
                    cfg.name, dt.count() * 1e3,
                    m.gauge(p + ".cycles_per_sec"),
                    m.gauge(p + ".instr_per_sec"));
    }
    m.gauge("perf.peak_rss_mb") = peakRssMb();
}

/** The run-to-run-stable half of the registry (counters only). */
std::string
deterministicFingerprint(const trace::MetricsRegistry &m)
{
    std::string s;
    for (const auto &[k, v] : m.counters())
        s += k + "=" + std::to_string(v) + "\n";
    return s;
}

/**
 * Recovery noop gate: a Gpu built with recovery *disabled* must be
 * byte-identical to the plain baseline — same per-launch metrics
 * JSON, no recovery.* keys — even when the disabled config carries
 * non-default knob values. This is the regression tripwire for the
 * "recovery off means zero behavioral footprint" contract
 * (docs/FAULT_MODEL.md); it runs over every non-recovery pinned
 * config so drift in any workload's path is caught.
 */
bool
recoveryNoopCheck(bool smoke)
{
    const auto gpu_cfg = referenceGpu();
    recovery::RecoveryConfig noisyOff; // disabled, knobs deliberately
    noisyOff.retryBudget = 1;          // non-default: must not leak
    noisyOff.ringCapacity = 7;
    noisyOff.rollbackPenalty = 99;

    bool ok = true;
    for (const auto &cfg : buildConfigs(smoke)) {
        if (cfg.recovery.enabled)
            continue;
        for (const auto &factory : cfg.factories) {
            auto wa = factory();
            gpu::Gpu base(configGpu(gpu_cfg, cfg), cfg.dmr, /*seed=*/1,
                          /*hook=*/nullptr, {}, cfg.scheme);
            const auto ra = workloads::runVerified(*wa, base);

            auto wb = factory();
            gpu::Gpu off(configGpu(gpu_cfg, cfg), cfg.dmr, /*seed=*/1,
                         /*hook=*/nullptr, noisyOff, cfg.scheme);
            const auto rb = workloads::runVerified(*wb, off);

            const auto ja = ra.metrics.toJson();
            const auto jb = rb.metrics.toJson();
            if (ja != jb) {
                std::fprintf(stderr,
                             "recovery-noop-check: %s — metrics "
                             "differ between baseline and "
                             "recovery-disabled runs\n",
                             cfg.name);
                ok = false;
            }
            if (jb.find("recovery") != std::string::npos) {
                std::fprintf(stderr,
                             "recovery-noop-check: %s — disabled run "
                             "leaked recovery.* metrics keys\n",
                             cfg.name);
                ok = false;
            }
        }
        std::printf("  %-18s recovery-off path identical\n",
                    cfg.name);
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    std::string out = "BENCH_PR4.json";
    unsigned repeat = 1;
    bool smoke = false;
    bool self_check = false;
    bool noop_check = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--repeat") == 0 &&
                   i + 1 < argc) {
            repeat = parseUnsignedArg("--repeat", argv[++i]);
            if (repeat == 0)
                usage(2);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--self-check") == 0) {
            self_check = true;
        } else if (std::strcmp(argv[i], "--recovery-noop-check") ==
                   0) {
            noop_check = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage(0);
        } else {
            std::fprintf(stderr, "perf_harness: unknown argument "
                         "'%s'\n", argv[i]);
            usage(2);
        }
    }

    if (noop_check) {
        std::printf("perf_harness: recovery noop check%s\n",
                    smoke ? " (smoke)" : "");
        if (!recoveryNoopCheck(smoke)) {
            std::fprintf(stderr,
                         "perf_harness: RECOVERY NOOP FAILURE — "
                         "disabled recovery perturbed the "
                         "simulation\n");
            return 1;
        }
        std::printf("recovery-noop-check: all configs identical\n");
        return 0;
    }

    const auto configs = buildConfigs(smoke);
    std::printf("perf_harness: %zu pinned configs, repeat=%u%s\n",
                configs.size(), repeat, smoke ? " (smoke)" : "");

    trace::MetricsRegistry m;
    m.counter("perf.repeat") = repeat;
    m.counter("perf.smoke") = smoke ? 1 : 0;
    measure(configs, repeat, m);

    if (self_check) {
        trace::MetricsRegistry second;
        second.counter("perf.repeat") = repeat;
        second.counter("perf.smoke") = smoke ? 1 : 0;
        std::printf("self-check: re-running suite\n");
        measure(configs, repeat, second);
        if (deterministicFingerprint(m) !=
            deterministicFingerprint(second)) {
            std::fprintf(stderr,
                         "perf_harness: DETERMINISM FAILURE — "
                         "counters differ between identical runs\n");
            return 1;
        }
        std::printf("self-check: deterministic counters identical\n");
    }

    std::ofstream f(out);
    if (!f) {
        std::fprintf(stderr, "perf_harness: cannot write %s\n",
                     out.c_str());
        return 2;
    }
    f << m.toJson();
    std::printf("metrics JSON written to %s\n", out.c_str());
    return 0;
}
