/**
 * @file
 * SDC rate vs raw fault rate: sweep a per-value corruption
 * probability and compare outcomes on the unprotected machine versus
 * Warped-DMR. The quantitative version of the paper's opening claim —
 * error detection turns silent data corruptions (SDC) into detectable
 * events (DUE).
 */

#include "bench/bench_util.hh"
#include "fault/fault_injector.hh"

using namespace warped;

namespace {

/** Outcome of one (run, protect) cell, folded after the fan-out. */
struct Cell
{
    bool detected = false;
    bool hung = false;
    bool good = false;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const unsigned jobs = bench::parseJobs(argc, argv);
    bench::printHeader("Fault-rate sweep",
                       "Outcome vs per-value corruption probability "
                       "(SCAN, 20 runs per point)");

    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 4;
    std::printf("(sweep machine: %s)\n\n", cfg.toString().c_str());

    std::printf("%-12s | %-22s | %-22s\n", "", "unprotected",
                "Warped-DMR");
    std::printf("%-12s | %6s %6s %6s | %6s %6s %6s\n", "fault prob",
                "SDC", "ok", "hang", "SDC", "detect", "ok");

    sim::RunPool pool(jobs);
    for (double p : {1e-7, 1e-6, 1e-5, 1e-4}) {
        // 40 independent cells: run 0..19 x {unprotected, protected}.
        // Hook seeds depend only on the run index, so the fan-out is
        // deterministic for any jobs value.
        std::vector<Cell> cells(40);
        pool.parallelFor(cells.size(), [&](std::size_t i) {
            const unsigned run = static_cast<unsigned>(i / 2);
            const bool protect = (i % 2) != 0;
            fault::RandomFaultHook hook(p, 1000 + run);
            auto w = workloads::makeScan(2);
            gpu::Gpu g(cfg,
                       protect ? dmr::DmrConfig::paperDefault()
                               : dmr::DmrConfig::off(),
                       1, &hook);
            w->setup(g);
            const auto r = g.launch(w->program(), w->gridBlocks(),
                                    w->blockThreads(), 2000000);
            cells[i] = Cell{r.dmr.errorsDetected > 0, r.hung,
                            !r.hung && w->verify(g)};
        });

        unsigned sdc0 = 0, ok0 = 0, hang0 = 0;
        unsigned sdc1 = 0, det1 = 0, ok1 = 0;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto &c = cells[i];
            if ((i % 2) != 0) {
                if (c.detected)
                    ++det1;
                else if (c.good)
                    ++ok1;
                else
                    ++sdc1;
            } else {
                if (c.hung)
                    ++hang0;
                else if (c.good)
                    ++ok0;
                else
                    ++sdc0;
            }
        }
        std::printf("%-12g | %6u %6u %6u | %6u %6u %6u\n", p, sdc0,
                    ok0, hang0, sdc1, det1, ok1);
    }

    std::printf("\nWarped-DMR converts nearly every silent corruption "
                "into a detected event;\nresidual SDCs live in the "
                "uncovered fraction (cf. Fig 9a coverage).\n");
    return 0;
}
