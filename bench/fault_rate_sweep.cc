/**
 * @file
 * SDC rate vs raw fault rate: sweep a per-value corruption
 * probability and compare outcomes on the unprotected machine versus
 * Warped-DMR. The quantitative version of the paper's opening claim —
 * error detection turns silent data corruptions (SDC) into detectable
 * events (DUE).
 */

#include "bench/bench_util.hh"
#include "fault/fault_injector.hh"

using namespace warped;

int
main()
{
    setVerbose(false);
    bench::printHeader("Fault-rate sweep",
                       "Outcome vs per-value corruption probability "
                       "(SCAN, 20 runs per point)");

    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 4;
    std::printf("(sweep machine: %s)\n\n", cfg.toString().c_str());

    std::printf("%-12s | %-22s | %-22s\n", "", "unprotected",
                "Warped-DMR");
    std::printf("%-12s | %6s %6s %6s | %6s %6s %6s\n", "fault prob",
                "SDC", "ok", "hang", "SDC", "detect", "ok");

    for (double p : {1e-7, 1e-6, 1e-5, 1e-4}) {
        unsigned sdc0 = 0, ok0 = 0, hang0 = 0;
        unsigned sdc1 = 0, det1 = 0, ok1 = 0;
        for (unsigned run = 0; run < 20; ++run) {
            for (int protect = 0; protect < 2; ++protect) {
                fault::RandomFaultHook hook(p, 1000 + run);
                auto w = workloads::makeScan(2);
                gpu::Gpu g(cfg,
                           protect ? dmr::DmrConfig::paperDefault()
                                   : dmr::DmrConfig::off(),
                           1, &hook);
                w->setup(g);
                const auto r =
                    g.launch(w->program(), w->gridBlocks(),
                             w->blockThreads(), 2000000);
                const bool good = !r.hung && w->verify(g);
                if (protect) {
                    if (r.dmr.errorsDetected)
                        ++det1;
                    else if (good)
                        ++ok1;
                    else
                        ++sdc1;
                } else {
                    if (r.hung)
                        ++hang0;
                    else if (good)
                        ++ok0;
                    else
                        ++sdc0;
                }
            }
        }
        std::printf("%-12g | %6u %6u %6u | %6u %6u %6u\n", p, sdc0,
                    ok0, hang0, sdc1, det1, ok1);
    }

    std::printf("\nWarped-DMR converts nearly every silent corruption "
                "into a detected event;\nresidual SDCs live in the "
                "uncovered fraction (cf. Fig 9a coverage).\n");
    return 0;
}
