/**
 * @file
 * SDC rate vs raw fault rate: sweep a per-value corruption
 * probability and compare outcome classes on the unprotected machine
 * versus Warped-DMR, using the campaign engine's Masked/Detected/
 * SDC/DUE taxonomy and Wilson intervals. The quantitative version of
 * the paper's opening claim — error detection turns silent data
 * corruptions (SDC) into detectable events (DUE).
 */

#include "bench/bench_util.hh"
#include "fault/campaign_engine.hh"
#include "fault/fault_injector.hh"

using namespace warped;

namespace {

/** Outcome of one (run, protect) cell, folded after the fan-out. */
struct Cell
{
    fault::OutcomeClass cls = fault::OutcomeClass::Masked;
    bool activated = false;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const unsigned jobs = bench::parseJobs(argc, argv);
    bench::printHeader("Fault-rate sweep",
                       "Outcome class vs per-value corruption "
                       "probability (SCAN, 20 runs per point)");

    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 4;
    std::printf("(sweep machine: %s)\n\n", cfg.toString().c_str());

    std::printf("%-12s | %-22s | %-36s\n", "", "unprotected",
                "Warped-DMR");
    std::printf("%-12s | %6s %6s %6s | %6s %6s %6s %16s\n",
                "fault prob", "SDC", "mask", "DUE", "SDC", "detect",
                "mask", "det. 95% CI");

    sim::RunPool pool(jobs);
    for (double p : {1e-7, 1e-6, 1e-5, 1e-4}) {
        // 40 independent cells: run 0..19 x {unprotected, protected}.
        // Hook seeds depend only on the run index, so the fan-out is
        // deterministic for any jobs value.
        std::vector<Cell> cells(40);
        pool.parallelFor(cells.size(), [&](std::size_t i) {
            const unsigned run = static_cast<unsigned>(i / 2);
            const bool protect = (i % 2) != 0;
            fault::RandomFaultHook hook(p, 1000 + run);
            auto w = workloads::makeScan(2);
            gpu::Gpu g(cfg,
                       protect ? dmr::DmrConfig::paperDefault()
                               : dmr::DmrConfig::off(),
                       1, &hook);
            w->setup(g);
            const auto r = g.launch(w->program(), w->gridBlocks(),
                                    w->blockThreads(), 2000000);
            const bool activated = hook.activations() > 0;
            const bool detected = r.dmr.errorsDetected > 0;
            const bool ok = activated && !detected && !r.hung
                                ? w->verify(g)
                                : true;
            cells[i] = Cell{fault::classifyOutcome(activated, detected,
                                                   r.hung, ok),
                            activated};
        });

        fault::OutcomeCounts unprot, prot;
        for (std::size_t i = 0; i < cells.size(); ++i)
            ((i % 2) != 0 ? prot : unprot)
                .add(cells[i].cls, cells[i].activated);

        const auto ci = prot.detectionCi();
        std::printf("%-12g | %6llu %6llu %6llu | %6llu %6llu %6llu "
                    "  [%5.1f, %5.1f]\n",
                    p,
                    static_cast<unsigned long long>(unprot.sdc),
                    static_cast<unsigned long long>(unprot.masked),
                    static_cast<unsigned long long>(unprot.due),
                    static_cast<unsigned long long>(prot.sdc),
                    static_cast<unsigned long long>(prot.detected),
                    static_cast<unsigned long long>(prot.masked),
                    100 * ci.lo, 100 * ci.hi);
    }

    std::printf("\nWarped-DMR converts nearly every silent corruption "
                "into a detected event;\nresidual SDCs live in the "
                "uncovered fraction (cf. Fig 9a coverage).\n");
    return 0;
}
