/**
 * @file
 * Figure 1: execution-time breakdown with respect to the number of
 * active threads. For every workload, the fraction of issue slots
 * whose warp instruction had 1, 2-11, 12-21, 22-31 or 32 active
 * threads (the paper's five stacked-bar buckets).
 */

#include "bench/bench_util.hh"

using namespace warped;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::printHeader(
        "Figure 1",
        "Execution time breakdown vs. number of active threads");

    std::printf("%-12s %8s %8s %8s %8s %8s   %s\n", "benchmark", "1",
                "2-11", "12-21", "22-31", "32", "warp instrs");

    const auto results = bench::sweepWorkloads(
        [](const std::string &name) {
            return bench::runWorkload(name, bench::paperGpu(),
                                      dmr::DmrConfig::off());
        },
        bench::parseJobs(argc, argv));

    double min_full = 1.0;
    std::string min_name;
    const auto &names = workloads::allNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &name = names[i];
        const auto &r = results[i];
        const auto &h = r.activeHist;
        const double f1 = h.rangeFraction(1, 1);
        const double f2 = h.rangeFraction(2, 11);
        const double f12 = h.rangeFraction(12, 21);
        const double f22 = h.rangeFraction(22, 31);
        const double f32 = h.rangeFraction(32, 32);
        std::printf("%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%   "
                    "%llu\n",
                    name.c_str(), 100 * f1, 100 * f2, 100 * f12,
                    100 * f22, 100 * f32,
                    static_cast<unsigned long long>(h.total()));
        if (f32 < min_full) {
            min_full = f32;
            min_name = name;
        }
    }

    std::printf("\nPaper shape check: BFS should be the most "
                "underutilized bar;\nmost underutilized here: %s "
                "(%.1f%% fully-active slots)\n",
                min_name.c_str(), 100 * min_full);
    return 0;
}
