/**
 * @file
 * Figure 5: execution-time breakdown with respect to instruction
 * type — the fraction of issue slots going to SP, SFU and LD/ST
 * units per workload (the heterogeneous-unit idleness inter-warp
 * DMR exploits).
 */

#include "bench/bench_util.hh"

using namespace warped;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::printHeader("Figure 5",
                       "Execution time breakdown by instruction type");

    std::printf("%-12s %8s %8s %8s\n", "benchmark", "SP", "SFU",
                "LD/ST");

    const auto results = bench::sweepWorkloads(
        [](const std::string &name) {
            return bench::runWorkload(name, bench::paperGpu(),
                                      dmr::DmrConfig::off());
        },
        bench::parseJobs(argc, argv));

    const auto &names = workloads::allNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &name = names[i];
        const auto &r = results[i];
        const double total = double(r.issuedWarpInstrs);
        const auto u = [&](isa::UnitType t) {
            return 100.0 *
                   double(r.unitIssues[static_cast<unsigned>(t)]) /
                   total;
        };
        std::printf("%-12s %7.1f%% %7.1f%% %7.1f%%\n", name.c_str(),
                    u(isa::UnitType::SP), u(isa::UnitType::SFU),
                    u(isa::UnitType::LDST));
    }

    std::printf("\nPaper shape check: SP dominates everywhere; Libor "
                "and CUFFT carry the\nlargest SFU shares; no workload "
                "is LD/ST-majority.\n");
    return 0;
}
