/**
 * @file
 * Shared plumbing for the figure-regeneration harnesses: fixed-width
 * table printing and the standard experiment setup (paper-default
 * machine, all 11 Table-4 workloads).
 */

#ifndef WARPED_BENCH_BENCH_UTIL_HH
#define WARPED_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "arch/gpu_config.hh"
#include "common/logging.hh"
#include "dmr/dmr_config.hh"
#include "gpu/gpu.hh"
#include "workloads/workload.hh"

namespace warped {
namespace bench {

/** The paper's Table-3 machine. */
inline arch::GpuConfig
paperGpu()
{
    return arch::GpuConfig::paperDefault();
}

/** Print the standard header every harness emits. */
inline void
printHeader(const std::string &figure, const std::string &caption)
{
    std::printf("=======================================================");
    std::printf("=================\n");
    std::printf("Warped-DMR reproduction | %s\n", figure.c_str());
    std::printf("%s\n", caption.c_str());
    std::printf("Machine: %s\n", paperGpu().toString().c_str());
    std::printf("=======================================================");
    std::printf("=================\n");
}

/** Run one named workload, verified, under the given configs. */
inline gpu::LaunchResult
runWorkload(const std::string &name, const arch::GpuConfig &cfg,
            const dmr::DmrConfig &dcfg)
{
    auto w = workloads::makeByName(name);
    gpu::Gpu g(cfg, dcfg);
    return workloads::runVerified(*w, g);
}

/** Geometric-style arithmetic mean helper for summary rows. */
inline double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / double(v.size());
}

} // namespace bench
} // namespace warped

#endif // WARPED_BENCH_BENCH_UTIL_HH
