/**
 * @file
 * Shared plumbing for the figure-regeneration harnesses: fixed-width
 * table printing and the standard experiment setup (paper-default
 * machine, all 11 Table-4 workloads).
 */

#ifndef WARPED_BENCH_BENCH_UTIL_HH
#define WARPED_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "arch/gpu_config.hh"
#include "common/logging.hh"
#include "dmr/dmr_config.hh"
#include "gpu/gpu.hh"
#include "sim/run_pool.hh"
#include "workloads/workload.hh"

namespace warped {
namespace bench {

/** The paper's Table-3 machine. */
inline arch::GpuConfig
paperGpu()
{
    return arch::GpuConfig::paperDefault();
}

/** Print the standard header every harness emits. */
inline void
printHeader(const std::string &figure, const std::string &caption)
{
    std::printf("=======================================================");
    std::printf("=================\n");
    std::printf("Warped-DMR reproduction | %s\n", figure.c_str());
    std::printf("%s\n", caption.c_str());
    std::printf("Machine: %s\n", paperGpu().toString().c_str());
    std::printf("=======================================================");
    std::printf("=================\n");
}

/** Run one named workload, verified, under the given configs. */
inline gpu::LaunchResult
runWorkload(const std::string &name, const arch::GpuConfig &cfg,
            const dmr::DmrConfig &dcfg)
{
    auto w = workloads::makeByName(name);
    gpu::Gpu g(cfg, dcfg);
    return workloads::runVerified(*w, g);
}

/**
 * Parse the standard `--jobs N` harness flag (0 = hardware
 * concurrency, the default). Every figure/campaign binary accepts it.
 */
inline unsigned
parseJobs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            return static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    }
    return sim::RunPool::kHardwareConcurrency;
}

/**
 * The standard workload sweep: evaluate @p fn for every Table-4
 * workload (Fig-1 order) across a RunPool, returning results in that
 * order — output is identical to a sequential sweep regardless of
 * @p jobs. @p fn must be callable concurrently (each call should
 * build its own Workload and Gpu).
 */
template <typename Fn>
auto
sweepWorkloads(Fn &&fn, unsigned jobs = sim::RunPool::kHardwareConcurrency)
    -> std::vector<std::invoke_result_t<Fn &, const std::string &>>
{
    using R = std::invoke_result_t<Fn &, const std::string &>;
    const auto &names = workloads::allNames();
    // Optional slots: R need not be default-constructible
    // (gpu::LaunchResult is not).
    std::vector<std::optional<R>> slots(names.size());
    sim::RunPool pool(jobs);
    pool.parallelFor(names.size(), [&](std::size_t i) {
        slots[i].emplace(fn(names[i]));
    });
    std::vector<R> out;
    out.reserve(slots.size());
    for (auto &s : slots)
        out.push_back(std::move(*s));
    return out;
}

/** Geometric-style arithmetic mean helper for summary rows. */
inline double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / double(v.size());
}

} // namespace bench
} // namespace warped

#endif // WARPED_BENCH_BENCH_UTIL_HH
