/**
 * @file
 * Figure 9b: normalized kernel cycles with respect to the ReplayQ
 * size (0, 1, 5, 10 entries), each bar normalized to the same
 * workload on the unprotected baseline machine. Paper averages:
 * 1.41 / 1.32 / 1.24 / 1.16.
 */

#include <array>

#include "bench/bench_util.hh"

using namespace warped;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::printHeader(
        "Figure 9b",
        "Normalized kernel cycles vs ReplayQ size (0/1/5/10)");

    const unsigned sizes[] = {0, 1, 5, 10};
    std::printf("%-12s %8s %8s %8s %8s\n", "benchmark", "q=0", "q=1",
                "q=5", "q=10");

    const auto rows = bench::sweepWorkloads(
        [&](const std::string &name) {
            const auto base = bench::runWorkload(
                name, bench::paperGpu(), dmr::DmrConfig::off());
            std::array<double, 4> norms{};
            for (unsigned i = 0; i < 4; ++i) {
                auto d = dmr::DmrConfig::paperDefault();
                d.replayQSize = sizes[i];
                const auto r =
                    bench::runWorkload(name, bench::paperGpu(), d);
                norms[i] = double(r.cycles) / double(base.cycles);
            }
            return norms;
        },
        bench::parseJobs(argc, argv));

    std::vector<double> sums[4];
    const auto &names = workloads::allNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::printf("%-12s", names[w].c_str());
        for (unsigned i = 0; i < 4; ++i) {
            sums[i].push_back(rows[w][i]);
            std::printf(" %8.3f", rows[w][i]);
        }
        std::printf("\n");
    }

    std::printf("%-12s", "AVERAGE");
    for (auto &s : sums)
        std::printf(" %8.3f", bench::meanOf(s));
    std::printf("\n%-12s %8.2f %8.2f %8.2f %8.2f\n", "Paper", 1.41,
                1.32, 1.24, 1.16);

    std::printf("\nPaper shape check: overhead decreases monotonically "
                "with ReplayQ size; the\nfully-utilized, bursty "
                "workloads (MatrixMul class) lose the most without a\n"
                "queue (paper: >70%% at q=0 dropping to 18%% at "
                "q=10); underutilized workloads\n(BFS class) are near "
                "zero overhead at every size.\n");
    return 0;
}
