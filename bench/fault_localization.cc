/**
 * @file
 * Fault localization (paper §3.4): because Warped-DMR checks at the
 * granularity of a single SP, a detected permanent fault can be
 * pinned to its (SM, lane) — whereas SM- or chip-level duplication
 * can only say "somewhere in this SM/chip" and must disable the whole
 * unit. This harness samples stuck-at sites from the
 * fault::FaultSiteSpace and scores how often the error log's
 * arbitration verdicts name the faulty core.
 */

#include <map>

#include "bench/bench_util.hh"
#include "fault/site_space.hh"

using namespace warped;

namespace {

/** Outcome of one injection run, folded in submission order. */
struct Verdict
{
    bool detected = false;
    bool localized = false;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const unsigned jobs = bench::parseJobs(argc, argv);
    bench::printHeader("Fault localization",
                       "Pinpointing the faulty SP from the error log "
                       "(Sec 3.4's granularity argument)");

    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 4;
    std::printf("(campaign machine: %s)\n\n", cfg.toString().c_str());
    auto dcfg = dmr::DmrConfig::paperDefault();
    dcfg.arbitrateErrors = true;

    // The permanent-fault slice of the site space: every
    // (SM, lane, bit) with a whole-run stuck-at-1 window. Site draws
    // derive from (seed, run index) alone, so the spec sequence is
    // independent of the worker count.
    fault::SiteSpaceConfig sc;
    sc.numSms = cfg.numSms;
    sc.warpSize = cfg.warpSize;
    sc.kinds = {fault::FaultKind::StuckAtOne};
    const fault::FaultSiteSpace space(sc, /*span=*/0);
    constexpr unsigned kRuns = 40;
    constexpr std::uint64_t kSeed = 0xCAFE;

    std::vector<Verdict> verdicts(kRuns);
    sim::RunPool pool(jobs);
    pool.parallelFor(kRuns, [&](std::size_t run) {
        const auto spec = space.site(space.sampleIndex(kSeed, run));
        fault::FaultInjector injector;
        injector.add(spec);

        auto w = workloads::makeScan(4);
        gpu::Gpu g(cfg, dcfg, 1, &injector);
        w->setup(g);
        const auto r = g.launch(w->program(), w->gridBlocks(),
                                w->blockThreads(), 2000000);
        if (r.dmr.errorsDetected == 0)
            return;
        verdicts[run].detected = true;

        // Majority vote over the log: PrimaryBad events blame the
        // primary lane, CheckerBad events blame the checker lane.
        std::map<std::pair<unsigned, unsigned>, unsigned> blame;
        for (const auto &ev : r.dmr.errorLog) {
            if (ev.verdict == dmr::ErrorVerdict::PrimaryBad)
                ++blame[{ev.sm, ev.primaryLane}];
            else if (ev.verdict == dmr::ErrorVerdict::CheckerBad)
                ++blame[{ev.sm, ev.checkerLane}];
        }
        if (blame.empty())
            return;
        auto best = blame.begin();
        for (auto it = blame.begin(); it != blame.end(); ++it) {
            if (it->second > best->second)
                best = it;
        }
        verdicts[run].localized =
            best->first == std::make_pair(spec.sm, spec.lane);
    });

    unsigned detected = 0, localized = 0;
    for (const auto &v : verdicts) {
        detected += v.detected;
        localized += v.localized;
    }

    std::printf("stuck-at sites in the space: %llu\n",
                static_cast<unsigned long long>(space.size()));
    std::printf("stuck-at faults injected: %u\n", kRuns);
    std::printf("detected:                 %u\n", detected);
    std::printf("correctly localized:      %u (%.0f%% of detected)\n",
                localized,
                detected ? 100.0 * localized / detected : 0.0);
    std::printf(
        "\nAn SM-level scheme would have to disable a whole SM (32 "
        "SPs); Warped-DMR's\nper-lane comparator plus arbitration "
        "names the faulty core, enabling the\ncore re-routing repair "
        "the paper cites [23].\n");
    return 0;
}
