/**
 * @file
 * Fault-injection campaign (§5.2 claim check), on the
 * fault::CampaignEngine: the paper's 96.43 % error coverage is an
 * instruction-accounting number; this harness measures the *observed*
 * outcome distribution by sampling fault sites (SM × lane × bit ×
 * window) per workload and kind, classifying every run as
 * Masked / Detected / SDC / DUE against the golden reference, and
 * attaching Wilson 95 % intervals. It also demonstrates the
 * hidden-error problem: with lane shuffling disabled, a stuck-at lane
 * verifies itself and permanent faults go undetected (§3.2).
 */

#include "bench/bench_util.hh"
#include "fault/campaign_engine.hh"

using namespace warped;

namespace {

/** One engine invocation: @p runs sites of one kind on one target. */
fault::CampaignReport
campaign(const char *name,
         const std::function<std::unique_ptr<workloads::Workload>()>
             &factory,
         const arch::GpuConfig &gpu_cfg, const dmr::DmrConfig &dmr_cfg,
         fault::FaultKind kind, unsigned runs, unsigned jobs,
         std::optional<isa::UnitType> unit = std::nullopt)
{
    fault::EngineConfig ec;
    ec.workload = name;
    ec.gpu = gpu_cfg;
    ec.dmr = dmr_cfg;
    ec.space.kinds = {kind};
    if (unit)
        ec.space.units = {unit};
    ec.sites = runs;
    ec.seed = 42;
    ec.jobs = jobs;
    fault::CampaignEngine engine(factory, ec);
    return engine.run();
}

void
printRow(const char *name, fault::FaultKind kind,
         const fault::CampaignReport &rep)
{
    const auto &o = rep.overall;
    const auto ci = o.coverageCi();
    std::printf("%-12s %-18s %7llu %9llu %5llu %5llu %8.1f%% "
                "[%5.1f, %5.1f]\n",
                name, faultKindName(kind),
                static_cast<unsigned long long>(o.masked),
                static_cast<unsigned long long>(o.detected),
                static_cast<unsigned long long>(o.sdc),
                static_cast<unsigned long long>(o.due),
                100 * o.coverage(), 100 * ci.lo, 100 * ci.hi);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const unsigned jobs = bench::parseJobs(argc, argv);
    bench::printHeader("Fault campaign",
                       "Sampled fault-site outcomes "
                       "(Masked/Detected/SDC/DUE, Wilson 95% CI)");

    // A representative cross-section: divergence-heavy, balanced and
    // fully-utilized workloads. Small instances keep the campaign
    // fast; each run injects one sampled fault site.
    struct Target
    {
        const char *name;
        std::function<std::unique_ptr<workloads::Workload>()> factory;
    };
    const std::vector<Target> targets = {
        {"BFS", [] { return workloads::makeBfs(4); }},
        {"SCAN", [] { return workloads::makeScan(4); }},
        {"MatrixMul", [] { return workloads::makeMatrixMul(64); }},
        {"SHA", [] { return workloads::makeSha(4); }},
        {"CUFFT", [] { return workloads::makeFft(4); }},
    };

    auto gpu_cfg = arch::GpuConfig::testDefault();
    gpu_cfg.numSms = 4;
    std::printf("(campaign machine: %s)\n\n",
                gpu_cfg.toString().c_str());

    std::printf("%-12s %-18s %7s %9s %5s %5s %9s %14s\n", "benchmark",
                "fault", "masked", "detected", "SDC", "DUE",
                "coverage", "95% CI");

    // Keep the stuck-at-1 reports: their latency tallies feed the
    // detection-latency table below without re-running anything.
    std::vector<fault::CampaignReport> stuckReports;
    for (const auto &t : targets) {
        for (auto kind : {fault::FaultKind::TransientBitFlip,
                          fault::FaultKind::StuckAtOne}) {
            const auto rep =
                campaign(t.name, t.factory, gpu_cfg,
                         dmr::DmrConfig::paperDefault(), kind, 40,
                         jobs);
            printRow(t.name, kind, rep);
            if (kind == fault::FaultKind::StuckAtOne)
                stuckReports.push_back(rep);
        }
    }

    // Detection latency: how quickly the comparator fires after a
    // fault first corrupts a value — versus the kernel-end detection
    // of the software schemes (the paper's Sec 1 "discovered too late"
    // argument).
    std::printf("\nDetection latency (stuck-at-1, cycles from first "
                "corruption to first alarm):\n");
    std::printf("  %-12s %14s %18s\n", "benchmark", "Warped-DMR",
                "kernel-end (SW)");
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const auto &rep = stuckReports[i];
        const double sw =
            rep.latencyCount
                ? double(rep.kernelLengthSum) / rep.latencyCount
                : 0.0;
        std::printf("  %-12s %14.1f %18.1f\n", targets[i].name,
                    rep.meanDetectionLatency(), sw);
    }
    std::printf("\n(Hardware DMR flags the fault within tens of "
                "cycles; a compare-outputs-on-the-CPU\nscheme cannot "
                "know before the kernel finishes.)\n");

    // The hidden-error demonstration: a permanent fault restricted to
    // the SFU datapath of a fully-utilized kernel (Libor) never
    // perturbs control flow, so no divergence arises and intra-warp
    // DMR never sees it; without lane shuffling the inter-warp
    // verification re-runs on the same faulty core and the error
    // hides (paper Sec 3.2).
    std::printf("\nHidden-error ablation (stuck-at-1 faults on the "
                "SFU datapath, Libor):\n");
    auto with = dmr::DmrConfig::paperDefault();
    auto without = with;
    without.laneShuffle = false;
    const auto factory = [] { return workloads::makeLibor(4); };
    const auto r_on =
        campaign("Libor", factory, gpu_cfg, with,
                 fault::FaultKind::StuckAtOne, 40, jobs,
                 isa::UnitType::SFU);
    const auto r_off =
        campaign("Libor", factory, gpu_cfg, without,
                 fault::FaultKind::StuckAtOne, 40, jobs,
                 isa::UnitType::SFU);
    std::printf("  lane shuffling ON : detected %llu, DUE %llu, "
                "SDC %llu  (detection %.1f%% of consequential)\n",
                static_cast<unsigned long long>(r_on.overall.detected),
                static_cast<unsigned long long>(r_on.overall.due),
                static_cast<unsigned long long>(r_on.overall.sdc),
                100 * r_on.overall.detectionRate());
    std::printf("  lane shuffling OFF: detected %llu, DUE %llu, "
                "SDC %llu  (detection %.1f%%) <- hidden errors\n",
                static_cast<unsigned long long>(
                    r_off.overall.detected),
                static_cast<unsigned long long>(r_off.overall.due),
                static_cast<unsigned long long>(r_off.overall.sdc),
                100 * r_off.overall.detectionRate());
    return 0;
}
