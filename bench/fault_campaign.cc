/**
 * @file
 * Fault-injection campaign (§5.2 claim check): the paper's 96.43 %
 * error coverage is an instruction-accounting number; this harness
 * measures the *observed* detection rate by injecting transient bit
 * flips and permanent stuck-at faults into physical lanes and running
 * real workloads. It also demonstrates the hidden-error problem:
 * with lane shuffling disabled, a stuck-at lane verifies itself and
 * permanent faults go undetected (§3.2).
 */

#include "bench/bench_util.hh"
#include "fault/campaign.hh"

using namespace warped;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const unsigned jobs = bench::parseJobs(argc, argv);
    bench::printHeader("Fault campaign",
                       "Observed detection rate under injected faults "
                       "(transient & stuck-at)");

    // A representative cross-section: divergence-heavy, balanced and
    // fully-utilized workloads. Small instances keep the campaign
    // fast; each run injects one fault.
    struct Target
    {
        const char *name;
        std::function<std::unique_ptr<workloads::Workload>()> factory;
    };
    const std::vector<Target> targets = {
        {"BFS", [] { return workloads::makeBfs(4); }},
        {"SCAN", [] { return workloads::makeScan(4); }},
        {"MatrixMul", [] { return workloads::makeMatrixMul(64); }},
        {"SHA", [] { return workloads::makeSha(4); }},
        {"CUFFT", [] { return workloads::makeFft(4); }},
    };

    auto gpu_cfg = arch::GpuConfig::testDefault();
    gpu_cfg.numSms = 4;
    std::printf("(campaign machine: %s)\n\n",
                gpu_cfg.toString().c_str());

    fault::CampaignConfig cc;
    cc.runs = 40;
    cc.jobs = jobs;

    std::printf("%-12s %-10s %9s %5s %5s %6s %6s %8s %10s\n",
                "benchmark", "fault", "detected", "hang", "SDC",
                "benign", "n/act", "det.rate", "coverage");

    for (const auto &t : targets) {
        // Analytic coverage for context.
        gpu::Gpu g(gpu_cfg, dmr::DmrConfig::paperDefault());
        auto w = t.factory();
        const double cov = workloads::runVerified(*w, g).coverage();

        for (auto kind : {fault::FaultKind::TransientBitFlip,
                          fault::FaultKind::StuckAtOne}) {
            cc.kind = kind;
            const auto res = fault::runCampaign(
                t.factory, gpu_cfg, dmr::DmrConfig::paperDefault(), cc);
            std::printf("%-12s %-10s %9u %5u %5u %6u %6u %7.1f%% "
                        "%9.1f%%\n",
                        t.name, faultKindName(kind), res.detected,
                        res.hangs, res.sdc, res.benign,
                        res.notActivated, 100 * res.detectionRate(),
                        100 * cov);
        }
    }

    // Detection latency: how quickly the comparator fires after a
    // fault first corrupts a value — versus the kernel-end detection
    // of the software schemes (the paper's Sec 1 "discovered too late"
    // argument).
    std::printf("\nDetection latency (stuck-at-1, cycles from first "
                "corruption to first alarm):\n");
    std::printf("  %-12s %14s %18s\n", "benchmark", "Warped-DMR",
                "kernel-end (SW)");
    for (const auto &t : targets) {
        fault::CampaignConfig cl;
        cl.runs = 20;
        cl.jobs = jobs;
        cl.kind = fault::FaultKind::StuckAtOne;
        const auto res = fault::runCampaign(
            t.factory, gpu_cfg, dmr::DmrConfig::paperDefault(), cl);
        const double sw =
            res.detected ? double(res.kernelLengthSum) / res.detected
                         : 0.0;
        std::printf("  %-12s %14.1f %18.1f\n", t.name,
                    res.meanDetectionLatency(), sw);
    }
    std::printf("\n(Hardware DMR flags the fault within tens of "
                "cycles; a compare-outputs-on-the-CPU\nscheme cannot "
                "know before the kernel finishes.)\n");

    // The hidden-error demonstration: a permanent fault restricted to
    // the SFU datapath of a fully-utilized kernel (Libor) never
    // perturbs control flow, so no divergence arises and intra-warp
    // DMR never sees it; without lane shuffling the inter-warp
    // verification re-runs on the same faulty core and the error
    // hides (paper Sec 3.2).
    std::printf("\nHidden-error ablation (stuck-at-1 faults on the "
                "SFU datapath, Libor):\n");
    fault::CampaignConfig cs;
    cs.runs = 40;
    cs.jobs = jobs;
    cs.kind = fault::FaultKind::StuckAtOne;
    cs.unit = isa::UnitType::SFU;
    auto with = dmr::DmrConfig::paperDefault();
    auto without = with;
    without.laneShuffle = false;
    const auto factory = [] { return workloads::makeLibor(4); };
    const auto r_on = fault::runCampaign(factory, gpu_cfg, with, cs);
    const auto r_off = fault::runCampaign(factory, gpu_cfg, without, cs);
    std::printf("  lane shuffling ON : detected %u, hang %u, SDC %u  "
                "(detection %.1f%%)\n",
                r_on.detected, r_on.hangs, r_on.sdc,
                100 * r_on.detectionRate());
    std::printf("  lane shuffling OFF: detected %u, hang %u, SDC %u  "
                "(detection %.1f%%) <- hidden errors\n",
                r_off.detected, r_off.hangs, r_off.sdc,
                100 * r_off.detectionRate());
    return 0;
}
