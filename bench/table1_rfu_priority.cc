/**
 * @file
 * Table 1: the RFU MUX priority table, regenerated from the
 * implementation's XOR rule (priority(m, k) = m ^ k), plus the §4.1
 * hardware-cost constants and the §4.3.1 ReplayQ sizing arithmetic.
 * Also reports a property the paper leaves implicit: the 4-lane XOR
 * network achieves the min(#active, #idle) coverage bound on every
 * occupancy, while the 8-lane variant misses it on 40/256 masks.
 */

#include <bit>

#include "bench/bench_util.hh"
#include "dmr/dmr_stats.hh"
#include "dmr/replay_queue.hh"
#include "dmr/rfu.hh"

using namespace warped;

static unsigned
masksBelowBound(unsigned width)
{
    unsigned below = 0;
    for (std::uint64_t mask = 1; mask < (1ULL << width); ++mask) {
        const unsigned active = std::popcount(mask);
        const unsigned idle = width - active;
        const unsigned covered =
            std::popcount(dmr::Rfu::covered(mask, width));
        if (covered < std::min(active, idle))
            ++below;
    }
    return below;
}

int
main()
{
    bench::printHeader("Table 1",
                       "RFU MUX priority table (and Sec 4.1 / 4.3.1 "
                       "hardware costs)");

    std::printf("Priority ");
    for (unsigned m = 0; m < 4; ++m)
        std::printf("  MUX%u", m);
    std::printf("\n");
    for (unsigned k = 0; k < 4; ++k) {
        std::printf("%7uth ", k + 1);
        for (unsigned m = 0; m < 4; ++m)
            std::printf("%5u ", dmr::Rfu::priority(m, k));
        std::printf("\n");
    }
    std::printf("(rule: priority(MUX m, level k) = m XOR k — matches "
                "the paper's Table 1 exactly)\n\n");

    std::printf("Coverage-bound property (exhaustive over all "
                "occupancies):\n");
    std::printf("  4-lane cluster: %u / 15 masks below "
                "min(active, idle)\n",
                masksBelowBound(4));
    std::printf("  8-lane cluster: %u / 255 masks below "
                "min(active, idle)\n",
                masksBelowBound(8));
    std::printf("  (the 8-lane shortfall is one reason Fig 9a's "
                "8-lane bar trails cross mapping)\n\n");

    using HC = dmr::HardwareCost;
    std::printf("Sec 4.1 synthesis results (Synopsys DC, 40 nm, "
                "recorded from the paper):\n");
    std::printf("  RFU:        %.0f um^2, %.3f ns\n", HC::kRfuAreaUm2,
                HC::kRfuDelayNs);
    std::printf("  Comparator: %.0f um^2, %.3f ns\n",
                HC::kComparatorAreaUm2, HC::kComparatorDelayNs);
    std::printf("  Cycle period: %.2f ns (800 MHz) -> MUX timing "
                "overhead %.2f%%\n\n",
                HC::kCyclePeriodNs,
                100.0 * HC::kRfuDelayNs / HC::kCyclePeriodNs / 1.0);

    const auto entry = dmr::ReplayQueue::entryBytes(32);
    std::printf("Sec 4.3.1 ReplayQ sizing: %zu B/entry, %zu B for 10 "
                "entries (~5 KB, 4%% of a\n128 KB register file)\n",
                entry, entry * 10);
    return 0;
}
