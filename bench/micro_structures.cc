/**
 * @file
 * Microbenchmarks (google-benchmark): raw speed of the core Warped-DMR
 * structures and of the simulator itself — the "is the implementation
 * usable" check, not a paper figure.
 */

#include <benchmark/benchmark.h>

#include "arch/simt_stack.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "dmr/replay_queue.hh"
#include "dmr/rfu.hh"
#include "dmr/thread_mapping.hh"
#include "gpu/gpu.hh"
#include "workloads/workload.hh"

using namespace warped;

static void
BM_RfuPair4(benchmark::State &state)
{
    std::array<unsigned, dmr::Rfu::kMaxWidth> v;
    std::uint64_t mask = 0;
    for (auto _ : state) {
        mask = (mask + 1) & 0xF;
        benchmark::DoNotOptimize(dmr::Rfu::pair(mask, 4, v));
    }
}
BENCHMARK(BM_RfuPair4);

static void
BM_RfuPair8(benchmark::State &state)
{
    std::array<unsigned, dmr::Rfu::kMaxWidth> v;
    std::uint64_t mask = 0;
    for (auto _ : state) {
        mask = (mask + 1) & 0xFF;
        benchmark::DoNotOptimize(dmr::Rfu::pair(mask, 8, v));
    }
}
BENCHMARK(BM_RfuPair8);

static void
BM_ReplayQueueChurn(benchmark::State &state)
{
    dmr::ReplayQueue q(10);
    Rng rng(1);
    func::ExecRecord r;
    r.instr.op = isa::Opcode::IADD;
    r.active = LaneMask::full(32);
    unsigned i = 0;
    for (auto _ : state) {
        r.instr.op = (i++ % 2) ? isa::Opcode::IADD : isa::Opcode::LDG;
        if (!q.full())
            q.push(r, i);
        benchmark::DoNotOptimize(
            q.popDifferentType(isa::UnitType::SFU, rng));
    }
}
BENCHMARK(BM_ReplayQueueChurn);

static void
BM_SimtStackDivergeReconverge(benchmark::State &state)
{
    arch::SimtStack s;
    for (auto _ : state) {
        s.reset(LaneMask::full(32), 0);
        s.branch(LaneMask(0xFFFF), 10, 1, 20);
        s.advanceTo(20);
        s.advanceTo(20);
        benchmark::DoNotOptimize(s.depth());
    }
}
BENCHMARK(BM_SimtStackDivergeReconverge);

static void
BM_MappingPermute(benchmark::State &state)
{
    dmr::ThreadCoreMapping m(dmr::MappingPolicy::CrossCluster, 32, 4);
    std::uint64_t raw = 0x123456789abcdefULL;
    for (auto _ : state) {
        raw = raw * 2862933555777941757ULL + 1;
        benchmark::DoNotOptimize(m.toLaneSpace(LaneMask(raw)));
    }
}
BENCHMARK(BM_MappingPermute);

/** End-to-end simulator throughput: warp-instructions per second. */
static void
BM_SimulatorThroughput(benchmark::State &state)
{
    setVerbose(false);
    const bool dmr_on = state.range(0) != 0;
    auto cfg = arch::GpuConfig::testDefault();
    cfg.numSms = 2;
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        auto w = workloads::makeScan(2);
        gpu::Gpu g(cfg, dmr_on ? dmr::DmrConfig::paperDefault()
                               : dmr::DmrConfig::off());
        const auto r = workloads::run(*w, g);
        instrs += r.issuedWarpInstrs;
    }
    state.counters["warp_instrs_per_s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
