/**
 * @file
 * Figure 10: execution times (kernel + host<->device transfer) of the
 * five error-detection approaches — Original, R-Naive, R-Thread,
 * DMTR and Warped-DMR (paper §5.3).
 */

#include <array>

#include "bench/bench_util.hh"
#include "redundancy/scheme.hh"

using namespace warped;

namespace {

struct Row
{
    std::array<double, 5> norm{};
    double xferShare = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::printHeader("Figure 10",
                       "Execution time of different error-detection "
                       "approaches (normalized to Original; "
                       "kernel+transfer)");

    using redundancy::Scheme;
    const Scheme schemes[] = {Scheme::Original, Scheme::RNaive,
                              Scheme::RThread, Scheme::Dmtr,
                              Scheme::WarpedDmr};

    std::printf("%-12s %10s %10s %10s %10s %10s   (xfer share of "
                "Original)\n",
                "benchmark", "Original", "R-Naive", "R-Thread", "DMTR",
                "Warped-DMR");

    const auto rows = bench::sweepWorkloads(
        [&](const std::string &name) {
            Row row;
            double base_total = 0.0, base_xfer = 0.0;
            for (unsigned i = 0; i < 5; ++i) {
                const auto r = redundancy::runScheme(
                    schemes[i], name, bench::paperGpu());
                if (i == 0) {
                    base_total = r.totalNs();
                    base_xfer = r.transferNs;
                }
                row.norm[i] = r.totalNs() / base_total;
            }
            row.xferShare = base_xfer / base_total;
            return row;
        },
        bench::parseJobs(argc, argv));

    std::vector<double> norm[5];
    const auto &names = workloads::allNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::printf("%-12s", names[w].c_str());
        for (unsigned i = 0; i < 5; ++i) {
            norm[i].push_back(rows[w].norm[i]);
            std::printf(" %10.3f", rows[w].norm[i]);
        }
        std::printf("   (%.0f%%)\n", 100.0 * rows[w].xferShare);
    }

    std::printf("%-12s", "AVERAGE");
    for (auto &v : norm)
        std::printf(" %10.3f", bench::meanOf(v));
    std::printf("\n");

    std::printf(
        "\nPaper shape check: R-Naive is the slowest (two kernels, "
        "two transfer sets);\nR-Thread second (hidden only with idle "
        "SMs, double output transfer); DMTR\npays per-instruction "
        "temporal redundancy; Warped-DMR is the cheapest\nprotected "
        "configuration.\n");
    return 0;
}
