/**
 * @file
 * Figure 10: execution times (kernel + host<->device transfer) of the
 * error-detection approaches — the paper's five (Original, R-Naive,
 * R-Thread, DMTR, Warped-DMR, §5.3) plus the two follow-on backends
 * the protection seam made runnable (Partial-Thread at 50%% protected
 * slots, Replay-Compare). All seven are measured launches through
 * redundancy::runScheme; none are analytic estimates.
 */

#include <array>

#include "bench/bench_util.hh"
#include "protection/scheme_registry.hh"
#include "redundancy/scheme.hh"

using namespace warped;

namespace {

constexpr unsigned kN = protection::kNumSchemes;

struct Row
{
    std::array<double, kN> norm{};
    double xferShare = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::printHeader("Figure 10",
                       "Execution time of different error-detection "
                       "approaches (normalized to Original; "
                       "kernel+transfer)");

    const auto schemes = protection::allSchemes();

    std::printf("%-12s", "benchmark");
    for (const auto s : schemes)
        std::printf(" %14s", protection::schemeDisplayName(s));
    std::printf("   (xfer share of Original)\n");

    const auto rows = bench::sweepWorkloads(
        [&](const std::string &name) {
            Row row;
            double base_total = 0.0, base_xfer = 0.0;
            for (unsigned i = 0; i < kN; ++i) {
                const auto r = redundancy::runScheme(
                    schemes[i], name, bench::paperGpu());
                if (i == 0) {
                    base_total = r.totalNs();
                    base_xfer = r.transferNs;
                }
                row.norm[i] = r.totalNs() / base_total;
            }
            row.xferShare = base_xfer / base_total;
            return row;
        },
        bench::parseJobs(argc, argv));

    std::vector<double> norm[kN];
    const auto &names = workloads::allNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::printf("%-12s", names[w].c_str());
        for (unsigned i = 0; i < kN; ++i) {
            norm[i].push_back(rows[w].norm[i]);
            std::printf(" %14.3f", rows[w].norm[i]);
        }
        std::printf("   (%.0f%%)\n", 100.0 * rows[w].xferShare);
    }

    std::printf("%-12s", "AVERAGE");
    for (auto &v : norm)
        std::printf(" %14.3f", bench::meanOf(v));
    std::printf("\n");

    std::printf(
        "\nPaper shape check: R-Naive is the slowest (two kernels, "
        "two transfer sets);\nR-Thread second (hidden only with idle "
        "SMs, double output transfer); DMTR\npays per-instruction "
        "temporal redundancy; Warped-DMR is the cheapest\nfully-"
        "protected configuration. Partial-Thread (50%% of warp "
        "slots) tracks\nWarped-DMR closely: the slots it still "
        "protects pay in-warp duplication\nstalls instead of the "
        "engine's cheaper idle-lane machinery. Replay-Compare\npays "
        "a full re-execution at kernel end, near R-Naive but "
        "without the\nsecond transfer set.\n");
    return 0;
}
