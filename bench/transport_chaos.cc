/**
 * @file
 * transport_chaos — end-to-end fault drill for the socket transport.
 *
 * Proves the PR-9 contract survives the network: a campaign served
 * over TCP to remote workers — including workers wrapped in a seeded
 * chaos injector (dropped, duplicated, corrupted, truncated frames,
 * surprise disconnects) and workers that hang mid-shard — must
 * produce a report byte-identical to a single-process
 * `warped_sim campaign` run with the same options.
 *
 * Three modes, each registered as its own ctest entry:
 *
 *   --mode smoke   one clean socket worker, --no-local-fallback:
 *                  every shard travels the wire.
 *   --mode hang    the worker goes silent on one shard; heartbeat
 *                  silence must trip re-issue long before the hung
 *                  worker wakes (wall-clock asserted).
 *   --mode chaos   two workers behind adversarial chaos schedules;
 *                  re-issue, duplicate folds, and local fallback
 *                  together must still converge byte-identically.
 *
 * The drill spawns real processes (sim::Subprocess) against the real
 * warped_sim binary — no mocks — so it exercises the same code path
 * a user's distributed campaign does.
 */

#include "sim/stream.hh"
#include "sim/subprocess.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

using namespace warped;

namespace {

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Poll for serve's --port-file and parse the bound port. */
bool
waitForPort(const std::string &path, unsigned &port,
            std::uint64_t timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        const auto text = readWholeFile(path);
        if (!text.empty()) {
            port = static_cast<unsigned>(
                std::strtoul(text.c_str(), nullptr, 10));
            if (port != 0)
                return true;
        }
        sim::sleepMs(20);
    }
    return false;
}

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct Drill
{
    std::string sim;
    std::string outdir;

    /** Campaign knobs shared by every run in the drill: small enough
     *  for a 1-core CI box, big enough for 5 non-trivial shards. */
    std::vector<std::string>
    workload() const
    {
        return {"SCAN", "--size", "2", "--sites", "40",
                "--seed", "9"};
    }

    std::string path(const char *leaf) const
    {
        return outdir + "/" + leaf;
    }

    bool
    runBaseline(std::string &baseline)
    {
        std::vector<std::string> argv = {sim, "campaign"};
        for (const auto &a : workload())
            argv.push_back(a);
        argv.push_back("--out");
        argv.push_back(path("base.json"));
        const auto res = sim::runSubprocess(argv);
        if (!res.ok()) {
            std::fprintf(stderr,
                         "FAIL: baseline campaign exited %d\n",
                         res.exitCode);
            return false;
        }
        baseline = readWholeFile(path("base.json"));
        if (baseline.empty()) {
            std::fprintf(stderr, "FAIL: baseline report is empty\n");
            return false;
        }
        return true;
    }

    std::vector<std::string>
    serveArgv(const char *outLeaf, const char *portLeaf,
              const std::vector<std::string> &extra)
    {
        std::vector<std::string> argv = {sim, "serve"};
        for (const auto &a : workload())
            argv.push_back(a);
        const std::vector<std::string> tail = {
            "--shards",    "5",
            "--listen",    "127.0.0.1:0",
            "--port-file", path(portLeaf),
            "--out",       path(outLeaf)};
        argv.insert(argv.end(), tail.begin(), tail.end());
        argv.insert(argv.end(), extra.begin(), extra.end());
        return argv;
    }

    std::vector<std::string>
    workerArgv(unsigned port, const std::vector<std::string> &extra)
    {
        std::vector<std::string> argv = {sim, "shard"};
        for (const auto &a : workload())
            argv.push_back(a);
        argv.push_back("--connect");
        argv.push_back("127.0.0.1:" + std::to_string(port));
        argv.insert(argv.end(), extra.begin(), extra.end());
        return argv;
    }
};

bool
compareReports(const std::string &baseline, const std::string &path,
               const char *what)
{
    const auto got = readWholeFile(path);
    if (got.empty()) {
        std::fprintf(stderr, "FAIL: %s wrote no report\n", what);
        return false;
    }
    if (got != baseline) {
        std::fprintf(stderr,
                     "FAIL: %s report differs from the sequential "
                     "baseline (%zu vs %zu bytes)\n",
                     what, got.size(), baseline.size());
        return false;
    }
    std::printf("OK: %s report is byte-identical (%zu bytes)\n",
                what, got.size());
    return true;
}

/** One clean socket worker; --no-local-fallback pins every shard to
 *  the wire, so byte-identity here certifies the framing, the delta
 *  path, and the idempotent folds with zero local help. */
bool
modeSmoke(Drill &d, const std::string &baseline)
{
    std::remove(d.path("smoke.port").c_str());
    sim::Subprocess serve(d.serveArgv(
        "smoke.json", "smoke.port", {"--no-local-fallback"}));
    unsigned port = 0;
    if (!waitForPort(d.path("smoke.port"), port, 10000)) {
        std::fprintf(stderr, "FAIL: serve never published a port\n");
        return false;
    }
    sim::Subprocess worker(d.workerArgv(port, {}));
    const auto ws = worker.wait();
    const auto ss = serve.wait();
    if (!ws.ok() || !ss.ok()) {
        std::fprintf(stderr,
                     "FAIL: smoke exits: worker=%d serve=%d\n",
                     ws.exitCode, ss.exitCode);
        return false;
    }
    return compareReports(baseline, d.path("smoke.json"),
                          "socket smoke");
}

/** The only worker goes silent on shard 2 for kHangMs. Heartbeat
 *  silence (8 x 100ms) plus a short fallback grace must re-issue the
 *  shard locally and finish the campaign while the worker is still
 *  asleep — asserted by wall clock, not by log scraping. */
bool
modeHang(Drill &d, const std::string &baseline)
{
    constexpr std::uint64_t kHangMs = 6000;
    std::remove(d.path("hang.port").c_str());
    const auto t0 = nowMs();
    sim::Subprocess serve(d.serveArgv("hang.json", "hang.port",
                                      {"--heartbeat", "100",
                                       "--grace", "400"}));
    unsigned port = 0;
    if (!waitForPort(d.path("hang.port"), port, 10000)) {
        std::fprintf(stderr, "FAIL: serve never published a port\n");
        return false;
    }
    sim::Subprocess worker(d.workerArgv(
        port, {"--hang-for-shard", "2", "--hang-ms",
               std::to_string(kHangMs)}));
    const auto ss = serve.wait();
    const auto elapsed = nowMs() - t0;
    worker.kill(); // it may still be napping; the drill is done
    worker.wait();
    if (!ss.ok()) {
        std::fprintf(stderr, "FAIL: serve exited %d\n",
                     ss.exitCode);
        return false;
    }
    if (elapsed >= kHangMs) {
        std::fprintf(stderr,
                     "FAIL: campaign took %llu ms — it waited out "
                     "the %llu ms hang instead of re-issuing on "
                     "heartbeat silence\n",
                     static_cast<unsigned long long>(elapsed),
                     static_cast<unsigned long long>(kHangMs));
        return false;
    }
    std::printf("OK: hung shard re-issued; campaign done in "
                "%llu ms (hang was %llu ms)\n",
                static_cast<unsigned long long>(elapsed),
                static_cast<unsigned long long>(kHangMs));
    return compareReports(baseline, d.path("hang.json"),
                          "hang drill");
}

/** Two workers behind independent adversarial chaos schedules. Every
 *  failure class fires: dropped and truncated frames surface as
 *  heartbeat silence, corrupt frames as CRC desync, duplicates as
 *  redundant folds, disconnects as reconnect-with-backoff. Local
 *  fallback stays enabled so the campaign always terminates; the
 *  report must still match the baseline byte for byte. */
bool
modeChaos(Drill &d, const std::string &baseline)
{
    std::remove(d.path("chaos.port").c_str());
    // --strikes 6: the default 3-strike budget is tuned for real
    // networks, where three consecutive failures of one shard mean a
    // broken configuration. This drill's injector *manufactures*
    // consecutive failures (~30% per attempt), so 3 strikes would
    // abort a healthy campaign a few percent of the time; 6 keeps
    // the abort path reachable while making false aborts vanishingly
    // rare.
    sim::Subprocess serve(d.serveArgv("chaos.json", "chaos.port",
                                      {"--heartbeat", "120",
                                       "--strikes", "6"}));
    unsigned port = 0;
    if (!waitForPort(d.path("chaos.port"), port, 10000)) {
        std::fprintf(stderr, "FAIL: serve never published a port\n");
        return false;
    }
    const char *kRates = ",drop=0.12,dup=0.15,corrupt=0.08,"
                         "trunc=0.06,disc=0.04";
    sim::Subprocess w1(d.workerArgv(
        port, {"--chaos", std::string("seed=3") + kRates,
               "--connect-attempts", "12"}));
    sim::Subprocess w2(d.workerArgv(
        port, {"--chaos", std::string("seed=11") + kRates,
               "--connect-attempts", "12"}));
    const auto ss = serve.wait();
    // Chaotic workers may exit 0 (served something) or 1 (their
    // schedule starved them out); either is legitimate. Only serve's
    // verdict and the report bytes are the contract.
    w1.wait();
    w2.wait();
    if (!ss.ok()) {
        std::fprintf(stderr, "FAIL: serve exited %d under chaos\n",
                     ss.exitCode);
        return false;
    }
    return compareReports(baseline, d.path("chaos.json"),
                          "chaos drill");
}

} // namespace

int
main(int argc, char **argv)
{
    Drill d;
    std::string mode = "all";
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--sim")
            d.sim = next();
        else if (a == "--outdir")
            d.outdir = next();
        else if (a == "--mode")
            mode = next();
        else {
            std::fprintf(stderr,
                         "usage: transport_chaos --sim PATH "
                         "--outdir DIR [--mode "
                         "smoke|hang|chaos|all]\n");
            return 2;
        }
    }
    if (d.sim.empty() || d.outdir.empty()) {
        std::fprintf(stderr,
                     "transport_chaos: --sim and --outdir are "
                     "required\n");
        return 2;
    }
    ::mkdir(d.outdir.c_str(), 0755);

    std::string baseline;
    if (!d.runBaseline(baseline))
        return 1;

    bool ok = true;
    if (mode == "smoke" || mode == "all")
        ok = modeSmoke(d, baseline) && ok;
    if (mode == "hang" || mode == "all")
        ok = modeHang(d, baseline) && ok;
    if (mode == "chaos" || mode == "all")
        ok = modeChaos(d, baseline) && ok;
    if (mode != "smoke" && mode != "hang" && mode != "chaos" &&
        mode != "all") {
        std::fprintf(stderr, "unknown --mode %s\n", mode.c_str());
        return 2;
    }
    std::printf("%s\n", ok ? "transport_chaos: all drills passed"
                           : "transport_chaos: FAILURES");
    return ok ? 0 : 1;
}
